// The three layered congestion-control receivers of Section 4.
//
// Common behaviour: on a congestion event (loss of a packet in a joined
// layer) the receiver leaves its highest layer (never below layer 1); the
// protocols differ in when they join the next layer. With i the current
// level, the expected number of packets received between the previous
// join/leave event and the join to layer i+1 is 2^(2(i-1)) in all three
// (the spacing chosen by the paper after [19]):
//
//  * Uncoordinated — per clean packet, join with probability 2^-(2(i-1))
//    (geometric waiting time with the right mean; no coordination).
//  * Deterministic — join after exactly 2^(2(i-1)) clean packets since the
//    last join/leave event (no inherent coordination, but identical loss
//    patterns produce identical behaviour).
//  * Coordinated — join only at a sender signal of level >= i (carried by
//    layer-1 packets on the ruler schedule, see LayeredSender) and only if
//    no congestion event occurred since the previous such signal.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace mcfair::sim {

/// Which join rule a receiver runs.
enum class ProtocolKind {
  kUncoordinated,
  kDeterministic,
  kCoordinated,
  /// The Section 5 "active networking" extension: the add/drop decision
  /// lives at the router in front of the shared link (one Deterministic
  /// state machine driven by shared-link congestion), and every
  /// downstream receiver inherits the router's subscription. The paper
  /// conjectures this "would make a redundancy of one feasible"; the
  /// ablation bench confirms it.
  kActiveRouter,
};

/// Name for tables ("Uncoordinated", ...).
const char* protocolName(ProtocolKind kind) noexcept;

/// One receiver's protocol state machine.
class LayeredReceiver {
 public:
  /// Starts at `initialLevel` (default 1) with `maxLayers` layers total.
  LayeredReceiver(ProtocolKind kind, std::size_t maxLayers,
                  std::size_t initialLevel = 1);

  /// Current subscription level (1..maxLayers).
  std::size_t level() const noexcept { return level_; }

  /// Processes one packet from a joined layer. `lost` marks a congestion
  /// event; `syncLevel` is the packet's join-signal level (0 when absent).
  /// `rng` drives the Uncoordinated protocol's join coin.
  void onPacket(bool lost, std::size_t syncLevel, util::Rng& rng);

  std::uint64_t joins() const noexcept { return joins_; }
  std::uint64_t leaves() const noexcept { return leaves_; }
  std::uint64_t congestionEvents() const noexcept { return losses_; }

  /// The join threshold at level i: 2^(2(i-1)) packets.
  static std::uint64_t joinThreshold(std::size_t level) noexcept;

 private:
  void onCongestion();
  void join();

  ProtocolKind kind_;
  std::size_t maxLayers_;
  std::size_t level_;
  /// Clean packets received since the last join/leave/loss event
  /// (Deterministic protocol).
  std::uint64_t cleanRun_ = 0;
  /// Whether any congestion event occurred since the last eligible sync
  /// signal (Coordinated protocol).
  bool cleanSinceSync_ = true;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t losses_ = 0;
};

}  // namespace mcfair::sim
