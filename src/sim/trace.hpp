// Protocol event tracing — observability for the simulators.
//
// A TraceSink receives join / leave / congestion events as they happen,
// ns-3-trace style: attach one to StarConfig::trace to record protocol
// dynamics without touching the measurement code. Sinks must outlive the
// simulation; they are non-owning observers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace mcfair::sim {

/// One traced protocol event.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kJoin,        ///< receiver joined one layer
    kLeave,       ///< receiver left its top layer
    kCongestion,  ///< receiver observed a congestion event (loss)
  };
  Kind kind = Kind::kJoin;
  double time = 0.0;
  std::size_t receiver = 0;
  /// Subscription level AFTER the event.
  std::size_t level = 0;
  /// Global sequence number of the packet that triggered the event.
  std::uint64_t packet = 0;
};

/// Trace event consumer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void onEvent(const TraceEvent& event) = 0;
};

/// Counts events by kind; cheap enough to attach in tests.
class CountingTraceSink final : public TraceSink {
 public:
  void onEvent(const TraceEvent& event) override;

  std::uint64_t joins() const noexcept { return joins_; }
  std::uint64_t leaves() const noexcept { return leaves_; }
  std::uint64_t congestions() const noexcept { return congestions_; }

 private:
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t congestions_ = 0;
};

/// Buffers events in memory (optionally only the first `limit`).
class RecordingTraceSink final : public TraceSink {
 public:
  explicit RecordingTraceSink(std::size_t limit = 0) : limit_(limit) {}

  void onEvent(const TraceEvent& event) override;

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::size_t limit_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Streams events as CSV rows `time,kind,receiver,level,packet`. Writes
/// the header on construction.
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& os);

  void onEvent(const TraceEvent& event) override;

 private:
  std::ostream& os_;
};

/// Kind name ("join" / "leave" / "congestion").
const char* traceKindName(TraceEvent::Kind kind) noexcept;

}  // namespace mcfair::sim
