// Multicast-tree generalization of the Section 4 experiments.
//
// The paper's Figure 7 topologies are modified stars: one shared link
// plus one fanout link per receiver. Real multicast distribution trees
// are deeper, and depth changes the *correlation structure* of loss:
// siblings share every ancestor link, so their congestion events are
// correlated in proportion to how much path they share. This module runs
// the same protocol state machines over a complete k-ary tree of
// Bernoulli-lossy links with receivers at the leaves, measuring
// redundancy on the root link. Depth 1 with branching = receiver count
// reproduces the star exactly (tests assert this).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/receiver.hpp"

namespace mcfair::sim {

/// Parameters for a complete k-ary tree experiment.
struct TreeConfig {
  /// Children per interior node (>= 1).
  std::size_t branching = 2;
  /// Links on each root-to-leaf path, counting the root link; receivers
  /// (leaves) = branching^(depth-1). depth 2 with branching N is exactly
  /// the paper's Figure 7(b) star.
  std::size_t depth = 4;
  std::size_t layers = 8;
  ProtocolKind protocol = ProtocolKind::kCoordinated;
  /// Bernoulli loss rate on the root link (the paper's shared loss).
  double rootLossRate = 0.0001;
  /// Bernoulli loss rate applied independently on every non-root link.
  double perLinkLossRate = 0.01;
  std::uint64_t totalPackets = 100000;
  std::uint64_t seed = 1;
  std::size_t initialLevel = 1;
};

/// Outcome of a tree run.
struct TreeResult {
  /// Leaves (= receivers) in the tree.
  std::size_t receivers = 0;
  /// Links in the tree.
  std::size_t links = 0;
  /// Packets forwarded on the root link / max delivered (Definition 3 on
  /// the root link).
  double rootRedundancy = 1.0;
  std::uint64_t rootForwarded = 0;
  std::uint64_t maxDelivered = 0;
  /// Average end-to-end loss rate experienced by subscribed receivers.
  double observedLossRate = 0.0;
  double meanLevel = 0.0;
};

/// Runs the tree experiment. Receiver count = branching^depth; guarded
/// to stay below ~4096 receivers.
TreeResult runTreeSimulation(const TreeConfig& config);

}  // namespace mcfair::sim
