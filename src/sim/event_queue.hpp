// A minimal discrete-event queue.
//
// The layered sender emits each layer's packets periodically at that
// layer's rate; the event queue merges those periodic streams into one
// global, time-ordered packet sequence with a deterministic tie-break
// (earlier time first, then lower sequence number), so simulations are
// bit-reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

namespace mcfair::sim {

/// A scheduled occurrence carrying an opaque payload id.
struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< insertion order; breaks time ties
  std::uint64_t payload = 0;   ///< caller-defined meaning
};

/// Min-heap of events ordered by (time, sequence).
class EventQueue {
 public:
  /// Schedules an event; returns its sequence number.
  std::uint64_t schedule(double time, std::uint64_t payload);

  /// True when no events remain.
  bool empty() const noexcept { return heap_.empty(); }

  std::size_t size() const noexcept { return heap_.size(); }

  /// Removes and returns the earliest event; std::nullopt when empty.
  std::optional<Event> pop();

  /// The earliest event without removing it; std::nullopt when empty.
  std::optional<Event> peek() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t nextSequence_ = 0;
};

}  // namespace mcfair::sim
