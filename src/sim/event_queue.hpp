// A minimal discrete-event queue.
//
// The layered sender emits each layer's packets periodically at that
// layer's rate; the event queue merges those periodic streams into one
// global, time-ordered packet sequence with a deterministic tie-break
// (earlier time first, then lower sequence number), so simulations are
// bit-reproducible.
//
// The heap is a plain vector managed with std::push_heap/std::pop_heap
// rather than std::priority_queue: pop() moves the top element out in one
// step instead of copying it from top() and popping separately, reserve()
// can preallocate for the periodic-emitter pattern (queue size stays at
// the layer count), and scheduleAt() admits a whole batch followed by a
// single heapify.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mcfair::sim {

/// A scheduled occurrence carrying an opaque payload id.
struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< insertion order; breaks time ties
  std::uint64_t payload = 0;   ///< caller-defined meaning
};

/// Min-heap of events ordered by (time, sequence).
class EventQueue {
 public:
  /// A (time, payload) pair for batch scheduling.
  struct Pending {
    double time = 0.0;
    std::uint64_t payload = 0;
  };

  /// Schedules an event; returns its sequence number.
  std::uint64_t schedule(double time, std::uint64_t payload);

  /// Schedules a batch in one pass: sequence numbers are assigned in
  /// batch order (so ties still dispatch in batch order) and the heap is
  /// rebuilt once instead of sifting per element. Returns the sequence
  /// number of the first entry; an empty batch returns the next unused
  /// sequence number.
  std::uint64_t scheduleAt(std::span<const Pending> batch);

  /// Bulk-heapify constructor: builds a queue holding exactly `batch` in
  /// one shot — a single allocation of batch.size() + extraCapacity
  /// slots, sequence numbers 0..n-1 assigned in batch order, one O(n)
  /// make_heap. The pop order is byte-identical to calling
  /// scheduleAt(batch) on a fresh queue (the event-queue tests pin
  /// this), so lane/epoch seeding can swap n individual schedule()
  /// pushes (O(n log n)) for one bulk build without disturbing any
  /// engine's dispatch order. `extraCapacity` reserves headroom for
  /// events pushed after construction (e.g. a reschedule racing a pop),
  /// keeping steady-state operation allocation-free.
  static EventQueue buildFrom(std::span<const Pending> batch,
                              std::size_t extraCapacity = 0);

  /// Preallocates storage for `n` simultaneously pending events.
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// True when no events remain.
  bool empty() const noexcept { return heap_.empty(); }

  /// Discards every pending event, keeping storage and the sequence
  /// counter (so later schedules still order after everything already
  /// dispatched). Used by drivers that abandon a merge wholesale — e.g.
  /// the fluid engine once a fast-forward certificate covers the rest of
  /// the run.
  void clear() noexcept { heap_.clear(); }

  std::size_t size() const noexcept { return heap_.size(); }

  /// Removes and returns the earliest event; std::nullopt when empty.
  std::optional<Event> pop();

  /// The earliest event without removing it; std::nullopt when empty.
  std::optional<Event> peek() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t nextSequence_ = 0;
};

}  // namespace mcfair::sim
