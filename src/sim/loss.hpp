// Packet-loss models for simulated links.
//
// Section 4 models loss (or ECN marking) as a Bernoulli process, arguing
// it is accurate when many flows share each link [21]. BernoulliLoss is
// what every paper experiment uses; GilbertElliottLoss adds the bursty
// (temporally correlated) alternative from the measurement literature the
// paper cites, for sensitivity studies beyond the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mcfair::sim {

/// Per-packet loss decision for one link.
class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Draws whether the next packet on this link is lost.
  virtual bool lose(util::Rng& rng) = 0;

  /// Long-run average loss probability of the model.
  virtual double averageLossRate() const noexcept = 0;

  /// Serializes the model's mutable per-packet state into one word, and
  /// restores it. Stateless models (Bernoulli) have nothing to save and
  /// keep the defaults; GilbertElliottLoss encodes its Markov state.
  /// The speculative engine uses this pair to snapshot exogenous-loss
  /// state at an epoch boundary and restore it on rollback, so a
  /// replayed epoch re-draws the exact serial sequence.
  virtual std::uint64_t stateWord() const noexcept { return 0; }
  virtual void setStateWord(std::uint64_t) noexcept {}
};

/// Independent loss with fixed probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);

  bool lose(util::Rng& rng) override;
  double averageLossRate() const noexcept override { return p_; }

 private:
  double p_;
};

/// Two-state Gilbert-Elliott loss: a Markov chain alternates between a
/// Good state (loss probability pGood) and a Bad state (pBad), with
/// per-packet transition probabilities goodToBad / badToGood. Stationary
/// loss rate = (b*pGood + g*pBad)/(g+b) with g=goodToBad, b=badToGood.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double goodToBad, double badToGood, double pGood,
                     double pBad);

  bool lose(util::Rng& rng) override;
  double averageLossRate() const noexcept override;

  bool inBadState() const noexcept { return bad_; }

  std::uint64_t stateWord() const noexcept override { return bad_ ? 1 : 0; }
  void setStateWord(std::uint64_t w) noexcept override { bad_ = (w != 0); }

 private:
  double goodToBad_;
  double badToGood_;
  double pGood_;
  double pBad_;
  bool bad_ = false;
};

/// Splits one independent RNG stream per link off `root`: one split() per
/// link, in ascending link-id order. This is the loss-stream layout the
/// closed-loop engines pin: because every link owns its stream, the draw a
/// link makes for its n-th admitted packet depends only on that link's own
/// admission history — never on how packets on OTHER links interleave with
/// it. That is what lets the component-parallel engine run link-disjoint
/// session components concurrently yet reproduce serial runs bit-exactly,
/// and it keeps the streams themselves pinned for serial replay (the
/// regression test in tests/test_loss.cpp hardcodes their head values).
std::vector<util::Rng> splitLossStreams(util::Rng& root,
                                        std::size_t linkCount);

}  // namespace mcfair::sim
