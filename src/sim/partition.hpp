// Session partitioning for the component-parallel transient engine.
//
// Two sessions interact in the closed-loop simulation exactly when their
// routed link unions intersect: every coupling between sessions flows
// through shared token buckets (and the shared links' loss models and
// accumulators). Partitioning the sessions into LINK-SET CONNECTED
// COMPONENTS — union-find over each session's data-path union — therefore
// splits the simulation state into fully disjoint slices that can execute
// concurrently and bit-identically (see runClosedLoopSimulationParallel in
// sim/closed_loop.hpp).
//
// The partition is STRUCTURAL, not temporal: sessions with disjoint
// lifetimes that cross the same link still share a component, because the
// link's token-bucket level carries over between them (the first session's
// last admit determines the refill state the second one sees). Start/stop
// churn and fault events never change which sessions share links, so one
// partition is valid for an entire run — SessionPartitioner caches it on
// net::Network::structureIdentity(), the same tier the max-min solver uses:
// capacity changes (setCapacity, fault reconfigurations) preserve the
// identity and hit the cache; only structural mutation triggers a rebuild.
// The rebuilds() counter makes that observable, and the zero-alloc suite
// pins it at 1 across packet-only steps and 64-flap fault schedules.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/network.hpp"

namespace mcfair::sim {

/// Link-set connected components of a network's sessions. Component ids
/// are dense and deterministic: components are numbered in order of their
/// smallest session index, so equal networks always partition identically
/// regardless of thread count or build history.
struct SessionPartition {
  /// Sentinel for links no session crosses (their buckets are never
  /// offered a packet, so they belong to no component).
  static constexpr std::uint32_t kUnattached = 0xffffffffu;

  std::uint32_t componentCount = 0;
  /// session -> component id.
  std::vector<std::uint32_t> componentOf;
  /// link -> component id, kUnattached for orphan links.
  std::vector<std::uint32_t> linkComponent;
  /// CSR component -> sessions, each component's sessions ascending.
  std::vector<std::uint32_t> sessionsBegin;  // componentCount + 1
  std::vector<std::uint32_t> sessions;

  /// The sessions of one component, in ascending session order.
  std::span<const std::uint32_t> sessionsOf(std::uint32_t comp) const {
    return {sessions.data() + sessionsBegin[comp],
            sessions.data() + sessionsBegin[comp + 1]};
  }

  /// Session count of the most populous component (0 when empty). The
  /// parallel engine's dispatch uses this to detect the mega-merge
  /// shape: when one component dominates the population, per-component
  /// lanes hit their Amdahl bound and the speculative intra-component
  /// engine takes over.
  std::size_t largestComponentSessions() const noexcept;
};

/// Builds and caches a SessionPartition per network structure. Reusable
/// across runs: ensure() is O(1) (one identity compare) when the
/// network's structureIdentity() is unchanged — capacity edits and fault
/// reconfigurations never invalidate it — and rebuilds into reused
/// storage otherwise.
class SessionPartitioner {
 public:
  /// Returns the partition of `network`, rebuilding only when its
  /// structureIdentity() differs from the cached one.
  const SessionPartition& ensure(const net::Network& network);

  /// How many times ensure() actually rebuilt — the observable contract
  /// that packet steps, churn, and faults do not recompute components.
  std::uint64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  void build(const net::Network& network);
  std::uint32_t findRoot(std::uint32_t link) noexcept;

  SessionPartition partition_;
  bool bound_ = false;
  std::uint64_t boundStructure_ = 0;
  std::uint64_t rebuilds_ = 0;
  // Union-find scratch over links, reused across rebuilds.
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::vector<std::uint32_t> rootComponent_;
};

}  // namespace mcfair::sim
