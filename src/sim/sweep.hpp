// Monte-Carlo sweep fleet: scenario x seed x sample-fraction grids.
//
// The established way to answer "what does sampling cost in fairness?"
// is a large randomized sweep over a systematic parameter grid (the
// Kalyanaraman et al. ATM study in PAPERS.md sweeps traffic patterns x
// configurations the same way). SweepDriver is that harness: it fans a
// (scenario preset) x (sample fraction) grid of cells over the existing
// util::ThreadPool, runs `runs` seeded replicas per cell — each replica
// builds its scenario network, solves it exactly (the oracle), solves it
// with fairness::SampledSolver at the cell's fraction, and scores the
// estimate — and aggregates every metric through *streaming* accumulators
// (util::RunningStats + two util::P2Quantile markers): no per-run values
// are retained, and the steady-state aggregation path allocates nothing.
//
// Determinism. Every cell is one work unit whose replicas run serially,
// in seed order, entirely inside whichever executor claims it, and whose
// accumulators are owned by the cell itself — no cross-thread merging
// ever happens, so results are bit-identical for every thread count (the
// pool's nondeterministic shard claiming only changes *when* a cell runs,
// never what it computes; tests/test_sweep_driver.cpp pins 1/2/4/8-thread
// equality). Replica seeds are seedBase + replica index, shared by the
// scenario expansion and the sampling draw.
//
// Fault axes. Presets with a FaultAxis contribute a second observation
// per replica when SweepConfig::solveMidFault is set: the fault
// schedule's prefix up to its median event time is applied to the built
// network via net::Network::setCapacity, and both solvers re-solve
// through their O(links) allocation-free refresh tiers — the sweep
// therefore scores sampling accuracy on the degraded topology too (fault
// cells stream 2x the observations; see docs/SWEEPS.md).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scenario.hpp"
#include "util/stats.hpp"
#include "util/validate.hpp"

namespace mcfair::sim {

/// The metrics every sweep cell aggregates (one observation per replica
/// solve; see SweepMetricName for display labels).
enum class SweepMetric : std::size_t {
  kMeanReceiverError = 0,  ///< SampledErrorReport::meanReceiverError
  kMaxReceiverError,       ///< SampledErrorReport::maxReceiverError
  kMaxLinkError,           ///< SampledErrorReport::maxLinkError
  kSampledShare,           ///< realized sample fraction after repair
  kExactRounds,            ///< filling rounds of the exact oracle solve
  kSampledRounds,          ///< filling rounds of the sampled solve
};
inline constexpr std::size_t kSweepMetricCount = 6;

/// Display name of a metric ("mean_rx_err", "p90" columns etc.).
std::string_view sweepMetricName(SweepMetric m) noexcept;

/// One metric's streaming aggregate: mean/min/max via Welford, median and
/// P90 via the P^2 estimator. add() never allocates.
struct MetricStream {
  util::RunningStats stats;
  util::P2Quantile p50{0.5};
  util::P2Quantile p90{0.9};

  void add(double x) noexcept {
    stats.add(x);
    p50.add(x);
    p90.add(x);
  }
};

/// One grid cell: a scenario preset at one sample fraction.
struct SweepCell {
  std::string scenario;
  double sampleFraction = 1.0;
  /// Observations streamed into each metric (replicas, x2 for fault
  /// presets when solveMidFault re-solves on the degraded network).
  std::size_t observations = 0;
  std::array<MetricStream, kSweepMetricCount> metrics;

  const MetricStream& metric(SweepMetric m) const {
    return metrics[static_cast<std::size_t>(m)];
  }
};

/// Fleet configuration.
struct SweepConfig {
  /// Grid rows. Each spec's seed is overwritten per replica with
  /// seedBase + replica, so equal specs at equal seeds are equal runs.
  std::vector<ScenarioSpec> scenarios;
  /// Grid columns, each in (0, 1]. 1.0 is the zero-error control column.
  std::vector<double> sampleFractions = {0.1, 0.25, 0.5, 1.0};
  /// Seeded replicas per cell.
  std::size_t runs = 8;
  std::uint64_t seedBase = 1;
  /// Worker threads for the cell fan-out: 0/1 = serial, -1 (default) =
  /// read MCFAIR_SWEEP_THREADS (unset/invalid -> serial). Results are
  /// bit-identical for every value.
  int threads = -1;
  /// fairness::SampledOptions::minPerLink of every sampled solve.
  std::size_t minPerLink = 1;
  /// Fault presets: also score a mid-fault re-solve on the degraded
  /// topology (second observation per replica; refresh-tier path).
  bool solveMidFault = true;
  /// Paranoid cross-checking (util/validate.hpp): forwarded to both
  /// solvers and, when resolved on, the driver additionally requires the
  /// fraction-1.0 column to show exactly zero error. Never changes
  /// results, only checks them.
  util::ValidateOptions validate;
  /// Attempts per cell: a cell whose run throws is retried from a clean
  /// accumulator state up to this many times in total, then quarantined
  /// into SweepResult::failedCells — one bad cell never aborts the
  /// fleet. Must be >= 1.
  std::size_t cellRetries = 2;
  /// Sleep before each retry (seconds, doubling per attempt); 0 retries
  /// immediately.
  double retryBackoffSeconds = 0.0;
  /// Test hook invoked at the start of every cell attempt (scenario
  /// name, fraction, 0-based attempt). A throwing hook injects a cell
  /// failure — the retry/quarantine tests drive exactly this. Null in
  /// production.
  std::function<void(const std::string&, double, std::size_t)> cellHook;
};

/// One quarantined grid cell: every attempt threw.
struct FailedSweepCell {
  std::string scenario;
  double sampleFraction = 1.0;
  /// Attempts consumed (== SweepConfig::cellRetries).
  std::size_t attempts = 0;
  /// what() of the last attempt's exception.
  std::string error;
};

/// The aggregated grid, cells in row-major (scenario-major) order.
struct SweepResult {
  std::vector<SweepCell> cells;
  std::size_t scenarioCount = 0;
  std::size_t fractionCount = 0;
  /// Cells whose every attempt threw, in cell order (deterministic for
  /// any thread count). A quarantined cell's accumulators stay empty
  /// (observations == 0).
  std::vector<FailedSweepCell> failedCells;

  const SweepCell& cell(std::size_t scenario, std::size_t fraction) const {
    return cells[scenario * fractionCount + fraction];
  }
};

/// Cell lookup by (scenario name, fraction); null when absent.
const SweepCell* findCell(const SweepResult& result, std::string_view scenario,
                          double sampleFraction);

/// The fleet harness. Construction validates the grid; run() executes it
/// (reusable: each run() recomputes from scratch).
class SweepDriver {
 public:
  explicit SweepDriver(SweepConfig config);

  const SweepConfig& config() const noexcept { return config_; }

  /// Resolved executor count of the fan-out (env applied); >= 1.
  std::size_t threadCount() const noexcept { return threads_; }

  SweepResult run() const;

 private:
  SweepConfig config_;
  std::size_t threads_ = 1;
};

/// Convenience: SweepDriver(config).run().
SweepResult runSweep(SweepConfig config);

}  // namespace mcfair::sim
