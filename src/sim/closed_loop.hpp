// Closed-loop simulation: layered congestion-control protocols running
// over a capacity-limited network.
//
// The paper's Section 4 experiments use exogenous (Bernoulli) loss; its
// argument, however, is that receiver-driven join/leave protocols bring
// receiver rates close to the max-min fair allocation ("it can be argued
// that these protocols come 'close' to achieving the max-min fair
// rates"). This module closes the loop: every link of a net::Network
// enforces its capacity with a token bucket, packets that exceed it are
// dropped for the receivers downstream, and the resulting congestion
// events drive the same protocol state machines as sim/receiver.hpp.
// Comparing measured long-run receiver rates against
// fairness::solveMaxMinFair quantifies how close each protocol gets.
//
// Model notes (documented simplifications):
//  * Time is continuous; each session's sender emits per-layer periodic
//    packet streams (sim/sender.hpp). A multicast packet consumes one
//    token on every link that leads to at least one subscribed receiver,
//    regardless of subscriber count (true multicast forwarding).
//  * A packet is lost to receiver r when ANY link on r's data-path had
//    no token for it; drop decisions across links of one packet are
//    independent (no upstream/downstream ordering — data-paths are link
//    sets in the fairness model).
//  * Joins/leaves take effect instantly (the paper's idealization).
//
// Four drivers share the per-packet machinery (token buckets, protocol
// state machines, measurement accumulators, all held in one SoA SimCore)
// and produce bit-identical trajectories on configurations where their
// execution orders provably agree:
//  * runClosedLoopSimulation — the event-driven session engine. Every
//    session keeps exactly one lookahead packet in a global
//    sim::EventQueue, so advancing the simulation is one pop + one push:
//    O(log sessions) per packet, independent of the population size.
//    Steady-state operation allocates nothing. With
//    ClosedLoopConfig::fluidFastForward it additionally runs the fluid
//    engine below.
//  * runClosedLoopSimulationFluid — the fluid fast-forward engine. It
//    executes per-packet until the population reaches a provably steady
//    regime (every live receiver absorbing, every link certified
//    drop-free by a token-bucket arrival-curve bound, no exogenous
//    loss), then advances every remaining packet in CLOSED FORM:
//    per-stream packet counts over the lifetime/warmup/bin boundaries
//    are computed analytically from the senders' exact emission-time
//    formula, so the run costs O(state changes), not O(packets) — yet
//    the result is bit-identical to the per-packet engines. Where the
//    certificate cannot be established (endogenous congestion, bursty
//    Gilbert-Elliott state, per-packet Bernoulli draws), it simply keeps
//    executing per-packet, preserving exact per-packet parity and RNG
//    draw counts.
//  * runClosedLoopSimulationReference — the original driver, which scans
//    all sessions' lookahead packets per event: O(sessions) per packet.
//    Retained as the oracle for the trajectory-parity tests and as the
//    baseline the merge benchmarks measure against (the same role
//    fairness::solveMaxMinFairReference plays for the solver).
//  * runClosedLoopSimulationParallel — the component-parallel transient
//    engine. Sessions are partitioned into link-set connected components
//    (sim/partition.hpp); each component gets its own event queue and
//    executes on the shared util::ThreadPool, touching only its own
//    disjoint slice of the SimCore arrays. Because all coupling between
//    sessions flows through shared links, and per-receiver/per-link RNG
//    streams make every draw depend only on within-component order, the
//    merged result is bit-identical to the serial event engine at every
//    thread count (the parity fuzz suite pins this across topologies,
//    mixes, loss models, and fault schedules).
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "fairness/allocation.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "sim/loss.hpp"
#include "sim/receiver.hpp"
#include "util/validate.hpp"

namespace mcfair::sim {

/// Per-session protocol configuration.
struct ClosedLoopSessionConfig {
  ProtocolKind protocol = ProtocolKind::kCoordinated;
  /// Layer count of the exponential scheme (cumulative rate 2^(i-1)
  /// packets per time unit at level i).
  std::size_t layers = 8;
  std::size_t initialLevel = 1;
  /// Session lifetime [startTime, stopTime): outside it the sender is
  /// silent and its receivers hold at initialLevel. Models the Section 5
  /// concern that "a session's fair allocation may vary due to startup
  /// and/or termination of other sessions".
  double startTime = 0.0;
  double stopTime = std::numeric_limits<double>::infinity();
};

/// One piecewise-constant segment of the time-varying max-min fair
/// reference: the sessions listed were live for all of [begin, end).
struct FairEpoch {
  double begin = 0.0;
  double end = 0.0;
  /// Original session indices live throughout this epoch.
  std::vector<std::size_t> sessions;
  /// Max-min fair rates of the live sessions' receivers, indexed parallel
  /// to `sessions` (fairRate[s][k] for receiver k of sessions[s]).
  std::vector<std::vector<double>> fairRate;
};

/// Experiment parameters.
struct ClosedLoopConfig {
  /// One entry per session of the Network; missing entries default.
  std::vector<ClosedLoopSessionConfig> sessions;
  /// Simulated duration (time units).
  double duration = 2000.0;
  /// Rates are measured over [warmup, duration].
  double warmup = 500.0;
  /// Token-bucket depth per link, in time units of capacity
  /// (depth = capacity * tokenBurst). Absorbs packet-scale burstiness.
  double tokenBurst = 2.0;
  std::uint64_t seed = 1;
  /// When positive, delivered rates are additionally recorded per time
  /// bin of this width over [0, duration) — the timeline used to observe
  /// adaptation to session arrivals/departures.
  double rateBinWidth = 0.0;
  /// When set, the piecewise max-min fair reference is recomputed at
  /// every session start/stop boundary (one incremental-solver re-solve
  /// per epoch) and returned in ClosedLoopResult::fairEpochs.
  bool computeFairEpochs = false;
  /// Thread count for the fair-epoch solver's sharded per-link sweeps,
  /// forwarded to fairness::MaxMinOptions::threads: 0/1 = serial,
  /// -1 (default) = MCFAIR_THREADS environment variable. One solver (and
  /// one worker pool) is reused across all epochs.
  int solverThreads = -1;
  /// When true, runClosedLoopSimulation fast-forwards provably steady
  /// intervals analytically (see runClosedLoopSimulationFluid). Off by
  /// default so existing experiments keep their exact execution path.
  bool fluidFastForward = false;
  /// Thread count for the component-parallel transient engine: sessions
  /// are partitioned into link-set connected components and executed
  /// concurrently with per-component event queues, bit-identical to the
  /// serial event engine at every value (see
  /// runClosedLoopSimulationParallel). 0/1 = serial; -1 (default) = the
  /// MCFAIR_SIM_THREADS environment variable (unset/invalid = serial).
  /// When fluidFastForward is also set, the fluid engine takes
  /// precedence in runClosedLoopSimulation (the two modes cover
  /// complementary regimes: fluid closes out steady populations in
  /// closed form, the parallel engine shards the congested/transient
  /// per-packet phases); call runClosedLoopSimulationParallel directly
  /// to force the partitioned engine.
  int engineThreads = -1;
  /// Thread count for the speculative intra-component engine
  /// (runClosedLoopSimulationSpeculative): epochs of simulated time are
  /// generated, admitted, and accounted by pool workers against a frozen
  /// subscription snapshot, with divergent epochs rolled back and
  /// replayed serially — bit-identical to the serial event engine at
  /// every value. Also gates the parallel engine's dispatch: when one
  /// link-set component dominates the session population (the mega-merge
  /// shape, where per-component lanes cannot help),
  /// runClosedLoopSimulationParallel reroutes here. 0 = never dispatch
  /// speculatively (lanes only); -1 (default) = inherit the resolved
  /// engineThreads / MCFAIR_SIM_THREADS count; >= 1 = that many workers.
  int speculationThreads = -1;
  /// Epoch-boundary density for the speculative engine: the run is split
  /// at every shared-link state-change time (session start/stop, fault
  /// application) plus this many uniform divisions of [0, duration].
  /// 0 (default) = auto-size epochs toward a fixed packet budget per
  /// reconciliation; larger values force more, shorter epochs (useful in
  /// tests to exercise the rollback path).
  std::size_t speculativeEpochs = 0;
  /// Optional exogenous per-link loss, layered on top of the endogenous
  /// token-bucket drops — the plumbing for sim/loss models (the paper's
  /// Section 4 Bernoulli process, or GilbertElliottLoss for bursty
  /// sensitivity studies). Called once per link id at simulation start;
  /// may return null for "no extra loss on this link". A forwarded packet
  /// that the loss model kills counts as dropped on that link and as a
  /// congestion event for the receivers behind it. Null (default) =
  /// endogenous loss only. The fluid engine never fast-forwards while a
  /// loss model is installed (each packet owes its per-link RNG draw).
  std::function<std::unique_ptr<LossModel>(graph::LinkId)> linkLoss;
  /// Deterministic fault schedule (net/fault.hpp): link-down, link-up,
  /// and capacity-degrade events applied at exact simulation times. A
  /// fault reconfigures the link's token bucket in place (rate and depth
  /// follow capacity * factor; a down link admits nothing) before any
  /// packet at or after the fault time is processed — an ordering all
  /// three drivers implement identically, so trajectories stay
  /// bit-identical through arbitrary schedules. Receivers whose
  /// data-path crosses a dead link simply see every packet dropped and
  /// degrade to the layers their surviving links sustain; nothing
  /// crashes or deadlocks. The fluid engine treats the next fault time
  /// as its fast-forward horizon: it advances analytically up to the
  /// fault, reconstructs exact per-packet state (senders, merge queue,
  /// token buckets), and hands execution back to the per-packet path —
  /// then re-engages after repair once the population is steady again.
  net::FaultSchedule faults;
  /// Paranoid invariant checking (util/validate.hpp), resolved against
  /// MCFAIR_VALIDATE by default: per-link accumulator conservation is
  /// asserted after every fault and at finalize, the fluid hand-back
  /// cross-checks its windowed token-bucket reconstruction against a
  /// full replay, and the fair-epoch solver re-validates each epoch
  /// against the reference oracle. Orders of magnitude slower — meant
  /// for CI debug/sanitizer jobs.
  util::ValidateOptions validate;
};

/// One maximal interval the fluid engine covered analytically.
struct FluidInterval {
  double begin = 0.0;
  double end = 0.0;
};

/// Measured outcome.
struct ClosedLoopResult {
  /// Delivered packets per time unit over the measurement window,
  /// indexed [session][receiver].
  std::vector<std::vector<double>> measuredRate;
  /// Forwarded packets per time unit per link (all sessions).
  std::vector<double> linkThroughput;
  /// Fraction of packet-link traversal attempts dropped per link.
  std::vector<double> linkDropRate;
  /// Measured session link rates u_{i,j} (forwarded, packets per time
  /// unit), indexed [session][link].
  std::vector<std::vector<double>> sessionLinkRate;
  /// Mean subscription level per receiver over the window.
  std::vector<std::vector<double>> meanLevel;
  /// When rateBinWidth > 0: delivered packets per time unit per bin,
  /// indexed [session][receiver][bin], covering [0, duration).
  std::vector<std::vector<std::vector<double>>> binRates;
  /// When computeFairEpochs: the time-varying fair reference, one entry
  /// per maximal interval with a constant set of live sessions.
  std::vector<FairEpoch> fairEpochs;
  /// Fluid engine diagnostics: total simulated time covered analytically
  /// and packets accounted in closed form instead of being executed.
  /// Both 0 for the per-packet engines and for runs where the
  /// steady-state certificate never held. With a fault schedule the
  /// coverage can be split into several intervals (fast-forward up to a
  /// fault, per-packet through the disruption, fast-forward again after
  /// recovery); fluidIntervals lists them in time order.
  double fluidTime = 0.0;
  std::uint64_t fluidPackets = 0;
  std::vector<FluidInterval> fluidIntervals;
  /// Component-parallel engine diagnostics (0 for the other drivers):
  /// the number of link-set connected components the sessions split
  /// into, and how many times the session partition was (re)built —
  /// exactly 1 per run, because packet steps, churn, and fault events
  /// never change which sessions share links (the zero-alloc suite pins
  /// this through a 64-flap fault schedule).
  std::size_t engineComponents = 0;
  std::uint64_t partitionRebuilds = 0;
  /// Speculative engine diagnostics (0 for the other drivers):
  /// speculationEpochs counts reconciliation intervals executed,
  /// speculationRollbacks counts the ones whose speculative admit/drop
  /// outcomes diverged from the frozen-subscription prediction and were
  /// re-executed serially. Certified-steady populations (e.g. the
  /// single-layer mega-merge preset, whose receivers provably never move)
  /// roll back zero times — a contract the tests assert.
  std::uint64_t speculationEpochs = 0;
  std::uint64_t speculationRollbacks = 0;
};

/// Runs the closed-loop experiment with the event-driven session engine
/// (O(log sessions) packet merge). Link capacities of `network` are
/// interpreted in packets per time unit. Throws PreconditionError on
/// inconsistent configuration. When ClosedLoopConfig::engineThreads
/// resolves to more than one thread (and fluidFastForward is off), this
/// dispatches to runClosedLoopSimulationParallel — bit-identical, just
/// faster on multi-component workloads.
ClosedLoopResult runClosedLoopSimulation(const net::Network& network,
                                         const ClosedLoopConfig& config);

/// The component-parallel transient engine: sessions are partitioned
/// into link-set connected components (union-find over each session's
/// routed link union, cached on the network's structure identity), each
/// component runs the event-driven per-packet loop on its own event
/// queue over its own disjoint slice of the shared SoA state, and
/// components execute concurrently on a util::ThreadPool sized by
/// ClosedLoopConfig::engineThreads. Per-component queues preserve the
/// serial pop order within every component (seeds enter in ascending
/// session order, reschedules follow pops), faults apply per component
/// strictly before any packet at or after their time, and all RNG
/// streams are per-receiver or per-link — so trajectories, bins, and
/// fair epochs are bit-identical to runClosedLoopSimulation at every
/// thread count. Always takes the partitioned path (even at one
/// thread); the fluid fast-forward mode is never armed here.
ClosedLoopResult runClosedLoopSimulationParallel(
    const net::Network& network, const ClosedLoopConfig& config);

/// The speculative intra-component engine: simulated time is split into
/// epochs bounded by shared-link state-change events (session start/stop
/// and fault times — the same horizons that clip the fluid engine's
/// fast-forward), sender-side packet generation for the NEXT epoch runs
/// on util::ThreadPool workers via the closed-form emission formula
/// while the current epoch's admit loop is still in flight, token-bucket
/// admits shard by link, and receiver accounting shards by session
/// against a frozen snapshot of every receiver's subscription level.
/// Reconciliation validates the speculative arrival curve of each bucket
/// against the serial-order admit decisions: an epoch in which some
/// receiver's level moved off its snapshot in a way that changes any
/// packet's touched-link set is rolled back wholesale (receivers, RNG
/// streams, buckets, loss state, and accumulators restored from the
/// epoch-entry snapshot) and replayed serially in exact merge order, so
/// the committed trajectory is bit-identical to the serial event engine
/// at every thread count — the parity fuzz suite pins this across
/// topologies, loss models, fault schedules, and 1/2/4/8 workers. The
/// steady packet loop is allocation-free; every arena is sized up front
/// from the closed-form per-epoch packet bounds.
ClosedLoopResult runClosedLoopSimulationSpeculative(
    const net::Network& network, const ClosedLoopConfig& config);

/// The event-driven engine with the fluid fast-forward mode always armed:
/// per-packet execution until every live receiver is absorbing and every
/// link is certified drop-free, closed-form advance from there to the end
/// of the run. Bit-identical to runClosedLoopSimulation whenever the
/// certificate is sound (which the parity suite pins), and identical by
/// construction when it never engages.
ClosedLoopResult runClosedLoopSimulationFluid(const net::Network& network,
                                              const ClosedLoopConfig& config);

/// The original driver: identical trajectories, but the per-packet merge
/// scans all sessions (O(sessions) per packet). Retained as the parity
/// oracle and benchmark baseline; use runClosedLoopSimulation otherwise.
ClosedLoopResult runClosedLoopSimulationReference(
    const net::Network& network, const ClosedLoopConfig& config);

/// Mean relative deviation of measured rates from a reference
/// allocation: mean_r |measured(r) - ref(r)| / max(ref(r), floor).
/// `floor` guards division for near-zero fair rates.
double fairnessGap(const net::Network& network,
                   const ClosedLoopResult& result,
                   const fairness::Allocation& reference,
                   double floor = 1e-9);

}  // namespace mcfair::sim
