#include "sim/partition.hpp"

#include <algorithm>
#include <numeric>

namespace mcfair::sim {

std::size_t SessionPartition::largestComponentSessions() const noexcept {
  std::size_t largest = 0;
  for (std::uint32_t c = 0; c < componentCount; ++c) {
    largest = std::max<std::size_t>(largest,
                                    sessionsBegin[c + 1] - sessionsBegin[c]);
  }
  return largest;
}

const SessionPartition& SessionPartitioner::ensure(
    const net::Network& network) {
  const std::uint64_t structure = network.structureIdentity();
  if (bound_ && boundStructure_ == structure) return partition_;
  build(network);
  bound_ = true;
  boundStructure_ = structure;
  ++rebuilds_;
  return partition_;
}

std::uint32_t SessionPartitioner::findRoot(std::uint32_t link) noexcept {
  // Iterative path halving.
  while (parent_[link] != link) {
    parent_[link] = parent_[parent_[link]];
    link = parent_[link];
  }
  return link;
}

void SessionPartitioner::build(const net::Network& network) {
  const std::size_t nLinks = network.linkCount();
  const std::size_t nSessions = network.sessionCount();

  parent_.resize(nLinks);
  std::iota(parent_.begin(), parent_.end(), 0u);
  size_.assign(nLinks, 1);

  // Union every session's link set: the first link of the first receiver
  // anchors, every other link of every receiver unions into it.
  for (std::size_t i = 0; i < nSessions; ++i) {
    const net::Session& sess = network.session(i);
    std::uint32_t anchor = SessionPartition::kUnattached;
    for (const net::Receiver& r : sess.receivers) {
      for (const graph::LinkId l : r.dataPath) {
        if (anchor == SessionPartition::kUnattached) {
          anchor = findRoot(l.value);
          continue;
        }
        const std::uint32_t a = findRoot(anchor);
        const std::uint32_t b = findRoot(l.value);
        if (a == b) {
          anchor = a;
          continue;
        }
        // Union by size.
        const std::uint32_t big = size_[a] >= size_[b] ? a : b;
        const std::uint32_t small = big == a ? b : a;
        parent_[small] = big;
        size_[big] += size_[small];
        anchor = big;
      }
    }
  }

  // Dense component ids in order of smallest session index: scanning
  // sessions ascending and labeling each unlabeled root makes the
  // numbering deterministic and independent of union order.
  partition_.componentOf.resize(nSessions);
  rootComponent_.assign(nLinks, SessionPartition::kUnattached);
  std::uint32_t count = 0;
  for (std::size_t i = 0; i < nSessions; ++i) {
    const net::Session& sess = network.session(i);
    std::uint32_t comp = SessionPartition::kUnattached;
    for (const net::Receiver& r : sess.receivers) {
      if (r.dataPath.empty()) continue;
      const std::uint32_t root = findRoot(r.dataPath.front().value);
      if (rootComponent_[root] == SessionPartition::kUnattached) {
        rootComponent_[root] = count++;
      }
      comp = rootComponent_[root];
      break;
    }
    // A session with no links (degenerate) still gets its own component
    // so every session has exactly one executor.
    if (comp == SessionPartition::kUnattached) comp = count++;
    partition_.componentOf[i] = comp;
  }
  partition_.componentCount = count;

  // Links inherit their root's label; orphan links (no session crosses
  // them) stay kUnattached — no packet is ever offered to them, so they
  // belong to no execution lane.
  partition_.linkComponent.resize(nLinks);
  for (std::uint32_t j = 0; j < nLinks; ++j) {
    partition_.linkComponent[j] = rootComponent_[findRoot(j)];
  }

  // CSR component -> sessions via counting sort; scanning sessions in
  // ascending order keeps each component's list ascending.
  partition_.sessionsBegin.assign(count + 1, 0);
  for (const std::uint32_t c : partition_.componentOf) {
    ++partition_.sessionsBegin[c + 1];
  }
  for (std::uint32_t c = 0; c < count; ++c) {
    partition_.sessionsBegin[c + 1] += partition_.sessionsBegin[c];
  }
  partition_.sessions.resize(nSessions);
  size_.assign(count, 0);  // reuse as per-component fill cursor
  for (std::size_t i = 0; i < nSessions; ++i) {
    const std::uint32_t c = partition_.componentOf[i];
    partition_.sessions[partition_.sessionsBegin[c] + size_[c]++] =
        static_cast<std::uint32_t>(i);
  }
}

}  // namespace mcfair::sim
