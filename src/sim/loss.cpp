#include "sim/loss.hpp"

#include "util/error.hpp"

namespace mcfair::sim {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  MCFAIR_REQUIRE(p >= 0.0 && p <= 1.0, "loss probability must be in [0,1]");
}

bool BernoulliLoss::lose(util::Rng& rng) { return rng.bernoulli(p_); }

GilbertElliottLoss::GilbertElliottLoss(double goodToBad, double badToGood,
                                       double pGood, double pBad)
    : goodToBad_(goodToBad),
      badToGood_(badToGood),
      pGood_(pGood),
      pBad_(pBad) {
  MCFAIR_REQUIRE(goodToBad >= 0.0 && goodToBad <= 1.0,
                 "transition probability must be in [0,1]");
  MCFAIR_REQUIRE(badToGood >= 0.0 && badToGood <= 1.0,
                 "transition probability must be in [0,1]");
  MCFAIR_REQUIRE(pGood >= 0.0 && pGood <= 1.0,
                 "loss probability must be in [0,1]");
  MCFAIR_REQUIRE(pBad >= 0.0 && pBad <= 1.0,
                 "loss probability must be in [0,1]");
}

bool GilbertElliottLoss::lose(util::Rng& rng) {
  // State transition first, then the loss draw in the new state.
  if (bad_) {
    if (rng.bernoulli(badToGood_)) bad_ = false;
  } else {
    if (rng.bernoulli(goodToBad_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? pBad_ : pGood_);
}

double GilbertElliottLoss::averageLossRate() const noexcept {
  const double denom = goodToBad_ + badToGood_;
  if (denom == 0.0) return bad_ ? pBad_ : pGood_;
  const double fracBad = goodToBad_ / denom;
  return fracBad * pBad_ + (1.0 - fracBad) * pGood_;
}

std::vector<util::Rng> splitLossStreams(util::Rng& root,
                                        std::size_t linkCount) {
  std::vector<util::Rng> streams;
  streams.reserve(linkCount);
  for (std::size_t j = 0; j < linkCount; ++j) streams.push_back(root.split());
  return streams;
}

}  // namespace mcfair::sim
