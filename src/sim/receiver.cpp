#include "sim/receiver.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mcfair::sim {

const char* protocolName(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kUncoordinated:
      return "Uncoordinated";
    case ProtocolKind::kDeterministic:
      return "Deterministic";
    case ProtocolKind::kCoordinated:
      return "Coordinated";
    case ProtocolKind::kActiveRouter:
      return "ActiveRouter";
  }
  return "?";
}

LayeredReceiver::LayeredReceiver(ProtocolKind kind, std::size_t maxLayers,
                                 std::size_t initialLevel)
    : kind_(kind), maxLayers_(maxLayers), level_(initialLevel) {
  MCFAIR_REQUIRE(maxLayers >= 1, "need at least one layer");
  MCFAIR_REQUIRE(initialLevel >= 1 && initialLevel <= maxLayers,
                 "initial level out of range");
}

std::uint64_t LayeredReceiver::joinThreshold(std::size_t level) noexcept {
  return std::uint64_t{1} << (2 * (level - 1));
}

void LayeredReceiver::onCongestion() {
  ++losses_;
  if (level_ > 1) {
    --level_;
    ++leaves_;
  }
  // A loss always restarts the clean run, and poisons the current sync
  // interval for the Coordinated protocol.
  cleanRun_ = 0;
  cleanSinceSync_ = false;
}

void LayeredReceiver::join() {
  ++level_;
  ++joins_;
  cleanRun_ = 0;
}

void LayeredReceiver::onPacket(bool lost, std::size_t syncLevel,
                               util::Rng& rng) {
  if (lost) {
    onCongestion();
    return;
  }
  switch (kind_) {
    case ProtocolKind::kUncoordinated:
      if (level_ < maxLayers_ &&
          rng.bernoulli(1.0 / static_cast<double>(joinThreshold(level_)))) {
        join();
      }
      break;
    case ProtocolKind::kDeterministic:
    case ProtocolKind::kActiveRouter:  // the router itself runs the
                                       // deterministic rule
      ++cleanRun_;
      if (level_ < maxLayers_ && cleanRun_ >= joinThreshold(level_)) {
        join();
      }
      break;
    case ProtocolKind::kCoordinated:
      if (syncLevel >= level_) {
        if (cleanSinceSync_ && level_ < maxLayers_) join();
        cleanSinceSync_ = true;  // a fresh interval starts at each signal
      }
      break;
  }
}

}  // namespace mcfair::sim
