#include "sim/trace.hpp"

#include <ostream>

namespace mcfair::sim {

const char* traceKindName(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kJoin:
      return "join";
    case TraceEvent::Kind::kLeave:
      return "leave";
    case TraceEvent::Kind::kCongestion:
      return "congestion";
  }
  return "?";
}

void CountingTraceSink::onEvent(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEvent::Kind::kJoin:
      ++joins_;
      break;
    case TraceEvent::Kind::kLeave:
      ++leaves_;
      break;
    case TraceEvent::Kind::kCongestion:
      ++congestions_;
      break;
  }
}

void RecordingTraceSink::onEvent(const TraceEvent& event) {
  if (limit_ == 0 || events_.size() < limit_) {
    events_.push_back(event);
  } else {
    ++dropped_;
  }
}

CsvTraceSink::CsvTraceSink(std::ostream& os) : os_(os) {
  os_ << "time,kind,receiver,level,packet\n";
}

void CsvTraceSink::onEvent(const TraceEvent& event) {
  os_ << event.time << ',' << traceKindName(event.kind) << ','
      << event.receiver << ',' << event.level << ',' << event.packet
      << '\n';
}

}  // namespace mcfair::sim
