#include "sim/tree_sim.hpp"

#include <algorithm>
#include <cmath>

#include "sim/loss.hpp"
#include "sim/sender.hpp"
#include "util/error.hpp"

namespace mcfair::sim {

namespace {

// Complete k-ary link tree addressing: level 1 is the single root link;
// level l (2..depth) has branching^(l-1) links. The ancestor link of
// leaf r at level l is indexed by r / branching^(depth-l) within the
// level.
struct TreeShape {
  std::size_t branching;
  std::size_t depth;
  std::vector<std::size_t> levelOffset;  // levelOffset[l-1] = first link id
  std::vector<std::size_t> leafDivisor;  // branching^(depth-l) per level
  std::size_t linkCount = 0;
  std::size_t leafCount = 0;

  TreeShape(std::size_t b, std::size_t d) : branching(b), depth(d) {
    std::size_t width = 1;
    for (std::size_t l = 1; l <= depth; ++l) {
      levelOffset.push_back(linkCount);
      linkCount += width;
      if (l < depth) width *= branching;
    }
    leafCount = width;
    for (std::size_t l = 1; l <= depth; ++l) {
      std::size_t div = 1;
      for (std::size_t e = l; e < depth; ++e) div *= branching;
      leafDivisor.push_back(div);
    }
  }

  std::size_t ancestorLink(std::size_t leaf, std::size_t level) const {
    return levelOffset[level - 1] + leaf / leafDivisor[level - 1];
  }
};

}  // namespace

TreeResult runTreeSimulation(const TreeConfig& config) {
  MCFAIR_REQUIRE(config.branching >= 1, "branching must be >= 1");
  MCFAIR_REQUIRE(config.depth >= 1, "depth must be >= 1");
  MCFAIR_REQUIRE(config.totalPackets >= 1, "need at least one packet");
  MCFAIR_REQUIRE(config.rootLossRate >= 0.0 && config.rootLossRate < 1.0,
                 "root loss must be in [0,1)");
  MCFAIR_REQUIRE(
      config.perLinkLossRate >= 0.0 && config.perLinkLossRate < 1.0,
      "per-link loss must be in [0,1)");

  const TreeShape shape(config.branching, config.depth);
  MCFAIR_REQUIRE(shape.leafCount <= 4096,
                 "tree too large: branching^(depth-1) must be <= 4096");

  util::Rng root(config.seed);
  util::Rng lossRng = root.split();
  std::vector<util::Rng> receiverRng;
  receiverRng.reserve(shape.leafCount);
  for (std::size_t k = 0; k < shape.leafCount; ++k) {
    receiverRng.push_back(root.split());
  }

  LayeredSender sender(layering::LayerScheme::exponential(config.layers));
  std::vector<LayeredReceiver> receivers(
      shape.leafCount, LayeredReceiver(config.protocol, config.layers,
                                       config.initialLevel));

  TreeResult result;
  result.receivers = shape.leafCount;
  result.links = shape.linkCount;
  std::vector<std::uint64_t> delivered(shape.leafCount, 0);
  std::uint64_t subscribedPairs = 0;
  std::uint64_t lostPairs = 0;
  double levelSum = 0.0;

  // Per-packet link-loss memo: 0 = undrawn, 1 = lost, 2 = ok.
  std::vector<char> linkState(shape.linkCount, 0);
  std::vector<std::uint32_t> touched;
  touched.reserve(shape.linkCount);

  for (std::uint64_t p = 0; p < config.totalPackets; ++p) {
    const Packet pkt = sender.next();

    bool anySubscribed = false;
    for (std::size_t k = 0; k < shape.leafCount; ++k) {
      LayeredReceiver& r = receivers[k];
      levelSum += static_cast<double>(r.level());
      if (r.level() < pkt.layer) continue;
      anySubscribed = true;
      ++subscribedPairs;
      bool lost = false;
      for (std::size_t level = 1; level <= shape.depth; ++level) {
        const std::size_t link = shape.ancestorLink(k, level);
        char& state = linkState[link];
        if (state == 0) {
          const double rate =
              level == 1 ? config.rootLossRate : config.perLinkLossRate;
          state = lossRng.bernoulli(rate) ? 1 : 2;
          touched.push_back(static_cast<std::uint32_t>(link));
        }
        if (state == 1) {
          lost = true;
          break;
        }
      }
      if (!lost) {
        ++delivered[k];
      } else {
        ++lostPairs;
      }
      r.onPacket(lost, pkt.syncLevel, receiverRng[k]);
    }
    if (anySubscribed) ++result.rootForwarded;

    for (const std::uint32_t j : touched) linkState[j] = 0;
    touched.clear();
  }

  result.maxDelivered =
      *std::max_element(delivered.begin(), delivered.end());
  result.rootRedundancy =
      result.maxDelivered > 0
          ? static_cast<double>(result.rootForwarded) /
                static_cast<double>(result.maxDelivered)
          : 1.0;
  result.observedLossRate =
      subscribedPairs > 0 ? static_cast<double>(lostPairs) /
                                static_cast<double>(subscribedPairs)
                          : 0.0;
  result.meanLevel = levelSum /
                     static_cast<double>(config.totalPackets) /
                     static_cast<double>(shape.leafCount);
  return result;
}

}  // namespace mcfair::sim
