#include "sim/sweep.hpp"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "fairness/sampled.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mcfair::sim {

namespace {

void observe(SweepCell& cell, const fairness::SampledErrorReport& report,
             std::size_t exactRounds, std::size_t sampledRounds) {
  const auto metric = [&cell](SweepMetric m) -> MetricStream& {
    return cell.metrics[static_cast<std::size_t>(m)];
  };
  metric(SweepMetric::kMeanReceiverError).add(report.meanReceiverError);
  metric(SweepMetric::kMaxReceiverError).add(report.maxReceiverError);
  metric(SweepMetric::kMaxLinkError).add(report.maxLinkError);
  metric(SweepMetric::kSampledShare)
      .add(report.totalReceivers == 0
               ? 1.0
               : static_cast<double>(report.sampledReceivers) /
                     static_cast<double>(report.totalReceivers));
  metric(SweepMetric::kExactRounds).add(static_cast<double>(exactRounds));
  metric(SweepMetric::kSampledRounds).add(static_cast<double>(sampledRounds));
  ++cell.observations;
}

void checkControlColumn(const SweepCell& cell,
                        const fairness::SampledErrorReport& report) {
  // The fraction-1.0 column is the control: the sample is everything and
  // the estimate must match the oracle bit for bit (see sampled.hpp).
  if (cell.sampleFraction != 1.0) return;
  MCFAIR_REQUIRE(report.meanReceiverError == 0.0 &&
                     report.maxReceiverError == 0.0 &&
                     report.maxLinkError == 0.0,
                 "sweep validation: nonzero error at sample fraction 1.0");
  MCFAIR_REQUIRE(report.sampledReceivers == report.totalReceivers,
                 "sweep validation: partial sample at fraction 1.0");
}

// Runs every replica of one grid cell, serially and in seed order. The
// cell owns its accumulators and nothing escapes to shared state, so the
// result is independent of which executor claims the cell and of how
// many executors exist.
void runCell(const SweepConfig& config, const ScenarioSpec& preset,
             SweepCell& cell) {
  const bool paranoid = config.validate.resolve();

  fairness::MaxMinOptions solverOptions;
  solverOptions.threads = 0;  // the fleet parallelizes over cells instead
  solverOptions.validate = config.validate;

  fairness::MaxMinSolver exact(solverOptions);
  std::vector<double> baseCapacity;

  for (std::size_t replica = 0; replica < config.runs; ++replica) {
    ScenarioSpec spec = preset;
    spec.seed = config.seedBase + replica;
    const Scenario scenario = buildScenario(spec);

    fairness::SampledOptions sampledOptions;
    sampledOptions.sampleFraction = cell.sampleFraction;
    sampledOptions.seed = spec.seed;
    sampledOptions.minPerLink = config.minPerLink;
    sampledOptions.solver = solverOptions;
    fairness::SampledSolver sampled(sampledOptions);

    const fairness::MaxMinResult& exactResult = exact.solve(scenario.network);
    const fairness::MaxMinResult& sampledResult =
        sampled.solve(scenario.network);
    const fairness::SampledErrorReport report =
        sampled.errorReport(exactResult);
    if (paranoid) checkControlColumn(cell, report);
    observe(cell, report, exactResult.rounds, sampledResult.rounds);

    // Fault presets: re-score on the degraded topology at the schedule's
    // median event time. setCapacity keeps the structure identity, so
    // both solvers take their O(links) allocation-free refresh tiers —
    // the same path the closed-loop engines exercise at fault edges.
    const net::FaultSchedule& faults = scenario.config.faults;
    if (!config.solveMidFault || faults.empty()) continue;

    net::Network degraded = scenario.network;
    baseCapacity.resize(degraded.linkCount());
    for (std::size_t j = 0; j < degraded.linkCount(); ++j) {
      baseCapacity[j] =
          degraded.capacity(graph::LinkId{static_cast<std::uint32_t>(j)});
    }
    const double probeTime =
        faults.events[faults.events.size() / 2].time;
    // Events *set* capacity factors (they do not stack), so replaying the
    // prefix in order leaves each link at its last event's factor.
    for (const net::FaultEvent& event : faults.events) {
      if (event.time > probeTime) break;
      degraded.setCapacity(
          event.link, baseCapacity[event.link.value] * event.appliedFactor());
    }

    const fairness::MaxMinResult& exactMid = exact.solve(degraded);
    const fairness::MaxMinResult& sampledMid = sampled.solve(degraded);
    const fairness::SampledErrorReport midReport =
        sampled.errorReport(exactMid);
    if (paranoid) checkControlColumn(cell, midReport);
    observe(cell, midReport, exactMid.rounds, sampledMid.rounds);
  }
}

}  // namespace

std::string_view sweepMetricName(SweepMetric m) noexcept {
  switch (m) {
    case SweepMetric::kMeanReceiverError:
      return "mean_rx_err";
    case SweepMetric::kMaxReceiverError:
      return "max_rx_err";
    case SweepMetric::kMaxLinkError:
      return "max_link_err";
    case SweepMetric::kSampledShare:
      return "sampled_share";
    case SweepMetric::kExactRounds:
      return "exact_rounds";
    case SweepMetric::kSampledRounds:
      return "sampled_rounds";
  }
  return "unknown";
}

const SweepCell* findCell(const SweepResult& result, std::string_view scenario,
                          double sampleFraction) {
  for (const SweepCell& cell : result.cells) {
    if (cell.scenario == scenario &&
        std::abs(cell.sampleFraction - sampleFraction) <= 1e-12) {
      return &cell;
    }
  }
  return nullptr;
}

SweepDriver::SweepDriver(SweepConfig config) : config_(std::move(config)) {
  MCFAIR_REQUIRE(config_.runs >= 1, "SweepConfig::runs must be >= 1");
  MCFAIR_REQUIRE(config_.cellRetries >= 1,
                 "SweepConfig::cellRetries must be >= 1");
  MCFAIR_REQUIRE(config_.retryBackoffSeconds >= 0.0,
                 "SweepConfig::retryBackoffSeconds must be >= 0");
  MCFAIR_REQUIRE(!config_.sampleFractions.empty(),
                 "SweepConfig::sampleFractions must be non-empty");
  for (const double f : config_.sampleFractions) {
    MCFAIR_REQUIRE(f > 0.0 && f <= 1.0,
                   "SweepConfig::sampleFractions entries must be in (0, 1]");
  }
  const std::size_t resolved =
      config_.threads < 0
          ? util::ThreadPool::threadCountFromEnv("MCFAIR_SWEEP_THREADS", 1)
          : static_cast<std::size_t>(config_.threads);
  threads_ = std::max<std::size_t>(resolved, 1);
}

SweepResult SweepDriver::run() const {
  SweepResult result;
  result.scenarioCount = config_.scenarios.size();
  result.fractionCount = config_.sampleFractions.size();
  result.cells.resize(result.scenarioCount * result.fractionCount);
  for (std::size_t si = 0; si < result.scenarioCount; ++si) {
    for (std::size_t fi = 0; fi < result.fractionCount; ++fi) {
      SweepCell& cell = result.cells[si * result.fractionCount + fi];
      cell.scenario = config_.scenarios[si].name;
      cell.sampleFraction = config_.sampleFractions[fi];
    }
  }
  if (result.cells.empty()) return result;

  // Per-cell failure slots: each shard writes only its own entry, so
  // no cross-thread state is shared and the quarantine report is
  // deterministic for every executor count (assembled in cell order
  // after the pool drains).
  std::vector<FailedSweepCell> failures(result.cells.size());

  auto shard = [&](std::size_t index) {
    const std::size_t si = index / result.fractionCount;
    SweepCell& cell = result.cells[index];
    double backoff = config_.retryBackoffSeconds;
    for (std::size_t attempt = 0; attempt < config_.cellRetries; ++attempt) {
      if (attempt > 0 && backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2.0;
      }
      // Retries restart from clean accumulators: a partially-streamed
      // attempt must not pollute the successful one.
      cell.observations = 0;
      cell.metrics = {};
      try {
        if (config_.cellHook) {
          config_.cellHook(cell.scenario, cell.sampleFraction, attempt);
        }
        runCell(config_, config_.scenarios[si], cell);
        failures[index].attempts = 0;  // success: clear any earlier error
        return;
      } catch (const std::exception& e) {
        failures[index].scenario = cell.scenario;
        failures[index].sampleFraction = cell.sampleFraction;
        failures[index].attempts = attempt + 1;
        failures[index].error = e.what();
      }
    }
    // Quarantined: leave the cell's accumulators empty.
    cell.observations = 0;
    cell.metrics = {};
  };
  util::ThreadPool pool(threads_);
  pool.forEachShard(result.cells.size(), shard);

  for (FailedSweepCell& f : failures) {
    if (f.attempts > 0) result.failedCells.push_back(std::move(f));
  }
  return result;
}

SweepResult runSweep(SweepConfig config) {
  return SweepDriver(std::move(config)).run();
}

}  // namespace mcfair::sim
