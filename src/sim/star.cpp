#include "sim/star.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/loss.hpp"
#include "sim/sender.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace mcfair::sim {

namespace {

// Tracks the lingering subscription left behind by multicast leave
// latency: after a level drop, the shared link keeps forwarding the old
// level until the leave takes effect.
struct Linger {
  std::size_t level = 0;
  double until = -1.0;

  std::size_t effectiveLevel(std::size_t current, double now) const {
    return now < until ? std::max(current, level) : current;
  }
  void onDrop(std::size_t oldLevel, double now, double latency) {
    if (latency <= 0.0) return;
    // A new drop extends the linger to cover the highest pending level.
    level = std::max(effectiveLevel(0, now), oldLevel);
    until = now + latency;
  }
};

}  // namespace

StarResult runStarSimulation(const StarConfig& config) {
  MCFAIR_REQUIRE(config.receivers >= 1, "need at least one receiver");
  MCFAIR_REQUIRE(config.totalPackets >= 1, "need at least one packet");
  MCFAIR_REQUIRE(config.perReceiverLossRate.empty() ||
                     config.perReceiverLossRate.size() == config.receivers,
                 "perReceiverLossRate must be empty or one entry per "
                 "receiver");
  MCFAIR_REQUIRE(config.leaveLatency >= 0.0,
                 "leave latency must be non-negative");

  MCFAIR_REQUIRE(!(config.prioritySharedDropping && config.sharedBurstLoss),
                 "priority dropping and bursty shared loss are mutually "
                 "exclusive");

  util::Rng root(config.seed);
  util::Rng sharedRng = root.split();

  // Priority dropping: per-layer loss weight w(L) proportional to L-1,
  // normalized so the bandwidth-weighted mean over the exponential
  // scheme is 1 (the base layer is never dropped by priority discard).
  std::vector<double> priorityWeight;
  if (config.prioritySharedDropping && config.layers > 1) {
    priorityWeight.assign(config.layers + 1, 0.0);
    double weightedSum = 0.0;
    double totalRate = 0.0;
    for (std::size_t L = 1; L <= config.layers; ++L) {
      const double rate = L == 1 ? 1.0 : std::ldexp(1.0, static_cast<int>(L) - 2);
      weightedSum += rate * static_cast<double>(L - 1);
      totalRate += rate;
    }
    const double scale = totalRate / weightedSum;
    for (std::size_t L = 1; L <= config.layers; ++L) {
      priorityWeight[L] = static_cast<double>(L - 1) * scale;
    }
  }
  std::vector<util::Rng> receiverRng;
  receiverRng.reserve(config.receivers);
  for (std::size_t k = 0; k < config.receivers; ++k) {
    receiverRng.push_back(root.split());
  }

  LayeredSender sender(layering::LayerScheme::exponential(config.layers));
  std::unique_ptr<LossModel> sharedLoss;
  if (config.sharedBurstLoss) {
    const auto& b = *config.sharedBurstLoss;
    sharedLoss = std::make_unique<GilbertElliottLoss>(
        b.goodToBad, b.badToGood, b.lossGood, b.lossBad);
  } else {
    sharedLoss = std::make_unique<BernoulliLoss>(config.sharedLossRate);
  }
  std::vector<BernoulliLoss> fanoutLoss;
  fanoutLoss.reserve(config.receivers);
  for (std::size_t k = 0; k < config.receivers; ++k) {
    fanoutLoss.emplace_back(config.perReceiverLossRate.empty()
                                ? config.independentLossRate
                                : config.perReceiverLossRate[k]);
  }

  // Receiver-driven protocols run one state machine per receiver; the
  // ActiveRouter extension runs a single Deterministic machine at the
  // router and every receiver inherits its subscription.
  const bool routerDriven = config.protocol == ProtocolKind::kActiveRouter;
  std::vector<LayeredReceiver> receivers(
      config.receivers, LayeredReceiver(config.protocol, config.layers,
                                        config.initialLevel));
  LayeredReceiver router(ProtocolKind::kActiveRouter, config.layers,
                         config.initialLevel);
  std::vector<Linger> lingers(routerDriven ? 1 : config.receivers);

  StarResult result;
  result.deliveredPackets.assign(config.receivers, 0);
  double levelSum = 0.0;

  for (std::uint64_t p = 0; p < config.totalPackets; ++p) {
    const Packet pkt = sender.next();
    result.duration = pkt.time;
    bool lostShared;
    if (!priorityWeight.empty()) {
      lostShared = sharedRng.bernoulli(
          std::min(1.0, config.sharedLossRate * priorityWeight[pkt.layer]));
    } else {
      lostShared = sharedLoss->lose(sharedRng);
    }

    if (routerDriven) {
      const std::size_t before = router.level();
      const std::size_t forwarding =
          lingers[0].effectiveLevel(before, pkt.time);
      if (forwarding >= pkt.layer) ++result.sharedLinkPackets;
      levelSum += static_cast<double>(before) *
                  static_cast<double>(config.receivers);
      // Receivers passively deliver whatever the router subscribes to.
      if (before >= pkt.layer) {
        for (std::size_t k = 0; k < config.receivers; ++k) {
          const bool lostFanout = fanoutLoss[k].lose(receiverRng[k]);
          if (!lostShared && !lostFanout) ++result.deliveredPackets[k];
        }
        // The router reacts to shared-link congestion only (it sits
        // upstream of the fanout links).
        router.onPacket(lostShared, pkt.syncLevel, sharedRng);
        if (router.level() < before) {
          lingers[0].onDrop(before, pkt.time, config.leaveLatency);
        }
        // Router trace events use receiver index == config.receivers.
        if (config.trace != nullptr) {
          if (lostShared) {
            config.trace->onEvent({TraceEvent::Kind::kCongestion,
                                   pkt.time, config.receivers,
                                   router.level(), pkt.sequence});
          }
          if (router.level() > before) {
            config.trace->onEvent({TraceEvent::Kind::kJoin, pkt.time,
                                   config.receivers, router.level(),
                                   pkt.sequence});
          } else if (router.level() < before) {
            config.trace->onEvent({TraceEvent::Kind::kLeave, pkt.time,
                                   config.receivers, router.level(),
                                   pkt.sequence});
          }
        }
      }
      continue;
    }

    // Multicast forwarding: the packet enters the shared link iff some
    // receiver is joined to its layer (including pending leaves).
    bool anySubscribed = false;
    for (std::size_t k = 0; k < config.receivers; ++k) {
      if (lingers[k].effectiveLevel(receivers[k].level(), pkt.time) >=
          pkt.layer) {
        anySubscribed = true;
        break;
      }
    }
    if (anySubscribed) ++result.sharedLinkPackets;

    for (std::size_t k = 0; k < config.receivers; ++k) {
      LayeredReceiver& r = receivers[k];
      levelSum += static_cast<double>(r.level());
      if (r.level() < pkt.layer) continue;  // not joined: packet unseen
      const bool lostFanout = fanoutLoss[k].lose(receiverRng[k]);
      const bool lost = lostShared || lostFanout;
      if (!lost) ++result.deliveredPackets[k];
      const std::size_t before = r.level();
      r.onPacket(lost, pkt.syncLevel, receiverRng[k]);
      if (r.level() < before) {
        lingers[k].onDrop(before, pkt.time, config.leaveLatency);
      }
      if (config.trace != nullptr) {
        if (lost) {
          config.trace->onEvent({TraceEvent::Kind::kCongestion, pkt.time,
                                 k, r.level(), pkt.sequence});
        }
        if (r.level() > before) {
          config.trace->onEvent({TraceEvent::Kind::kJoin, pkt.time, k,
                                 r.level(), pkt.sequence});
        } else if (r.level() < before) {
          config.trace->onEvent({TraceEvent::Kind::kLeave, pkt.time, k,
                                 r.level(), pkt.sequence});
        }
      }
    }
  }

  result.maxDelivered = *std::max_element(result.deliveredPackets.begin(),
                                          result.deliveredPackets.end());
  result.redundancy =
      result.maxDelivered > 0
          ? static_cast<double>(result.sharedLinkPackets) /
                static_cast<double>(result.maxDelivered)
          : 1.0;
  result.meanLevel = levelSum / static_cast<double>(config.totalPackets) /
                     static_cast<double>(config.receivers);
  if (routerDriven) {
    result.totalJoins = router.joins();
    result.totalLeaves = router.leaves();
    result.totalCongestionEvents = router.congestionEvents();
  } else {
    for (const auto& r : receivers) {
      result.totalJoins += r.joins();
      result.totalLeaves += r.leaves();
      result.totalCongestionEvents += r.congestionEvents();
    }
  }
  return result;
}

RedundancyEstimate estimateRedundancy(const StarConfig& config,
                                      std::size_t runs) {
  MCFAIR_REQUIRE(runs >= 1, "need at least one run");
  util::RunningStats stats;
  for (std::size_t r = 0; r < runs; ++r) {
    StarConfig c = config;
    c.seed = config.seed + r;
    stats.add(runStarSimulation(c).redundancy);
  }
  return RedundancyEstimate{stats.mean(), stats.ci95HalfWidth(),
                            stats.count()};
}

}  // namespace mcfair::sim
