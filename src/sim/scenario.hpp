// Scenario engine: parameterized closed-loop experiment populations.
//
// The paper's Section 4 experiments are hand-built topologies with a
// handful of sessions; the scenario engine generalizes that driver into
// a generator for large, heterogeneous populations — the workloads the
// event-driven session engine exists for (10k-100k concurrent sessions).
// A ScenarioSpec describes a population statistically (session count,
// protocol mix, arrival/departure processes, private-tail capacity
// distribution, exogenous loss); buildScenario() expands it into a
// concrete Scenario — a net::Network plus a ClosedLoopConfig — fully
// deterministically from the spec's seed, so every scenario is
// reproducible and shareable by (name, seed) alone.
//
// The catalog (scenarioCatalog()) names the standard presets used by the
// benches: steady shared bottlenecks, heterogeneous protocol mixes with
// single-rate (CBR-like) competitors, flash-crowd arrivals, sustained
// churn with the fair-epoch reference enabled, lossy and bursty-loss
// backbones, and the mega-merge stress population for the packet-merge
// benchmarks.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "sim/closed_loop.hpp"

namespace mcfair::sim {

/// One entry of a heterogeneous session-population mix.
struct SessionMix {
  /// Protocol / layer configuration stamped onto sessions drawn from this
  /// entry. startTime/stopTime are overwritten by the spec's arrival and
  /// lifetime processes.
  ClosedLoopSessionConfig session;
  /// chi(S_i) recorded in the generated Network. kSingleRate models the
  /// paper's non-layered (CBR-like) competitors; pair it with
  /// session.layers == 1 so the sender cannot adapt its rate.
  net::SessionType type = net::SessionType::kMultiRate;
  /// Relative probability of drawing this entry; must be positive.
  double weight = 1.0;
};

/// Exogenous-loss selector, expanded into ClosedLoopConfig::linkLoss.
struct LossSpec {
  enum class Kind {
    kNone,            ///< endogenous (token-bucket) loss only
    kBernoulli,       ///< independent per-packet loss at `rate`
    kGilbertElliott,  ///< bursty loss averaging `rate` (see below)
  };
  Kind kind = Kind::kNone;
  /// Long-run average loss probability per link (both lossy kinds).
  double rate = 0.0;
  /// Gilbert-Elliott only: expected number of packets per bad-state
  /// burst (badToGood = 1 / meanBurst).
  double meanBurst = 8.0;
  /// Gilbert-Elliott only: loss probability inside the bad state; the
  /// good state is loss-free and goodToBad is solved so the stationary
  /// loss rate equals `rate`. Requires badLossRate > rate.
  double badLossRate = 0.5;
};

/// A parameterized closed-loop experiment population.
///
/// Topology: either one shared backbone link (capacity scales with the
/// session count) — the shape of the paper's star experiments, scaled
/// out — or a Barabási–Albert scale-free tree backbone (per the
/// PAPERS.md scale-free bottleneck study), in both cases optionally plus
/// one private tail link per receiver.
struct ScenarioSpec {
  /// Backbone shape.
  enum class Topology {
    /// One shared link crossed by every receiver (the default).
    kSharedLink,
    /// A Barabási–Albert preferential-attachment tree of backboneNodes
    /// nodes rooted at the sender side: node v >= 2 attaches to an
    /// existing node with probability proportional to its degree, every
    /// tree edge is a link, and each receiver sits at a uniformly drawn
    /// non-root node with the root path as its data-path. Degrees follow
    /// the scale-free power law, so a few hub edges carry most sessions
    /// — the bottleneck-distribution setting of the PAPERS.md
    /// (Sreenivasan et al.) study. Each edge is provisioned
    /// backbonePerSession per session crossing it.
    kScaleFreeTree,
  };

  std::string name = "custom";
  std::string description;

  std::size_t sessions = 4;
  std::size_t receiversPerSession = 1;

  Topology topology = Topology::kSharedLink;
  /// Node count of the kScaleFreeTree backbone (>= 2; ignored for
  /// kSharedLink).
  std::size_t backboneNodes = 32;

  /// kSharedLink: backbone capacity = sessions * backbonePerSession
  /// (packets per time unit), so per-session contention is
  /// scale-invariant. kScaleFreeTree: per-edge capacity =
  /// backbonePerSession * sessions crossing the edge.
  double backbonePerSession = 2.0;
  /// When tailCapacityMax > 0, every receiver gets a private tail link
  /// with capacity uniform in [tailCapacityMin, tailCapacityMax] — the
  /// heterogeneous-receiver setting where multi-rate delivery pays off.
  double tailCapacityMin = 0.0;
  double tailCapacityMax = 0.0;

  double duration = 2000.0;
  double warmup = 500.0;

  /// Arrival process: 0 = every session starts at t = 0; > 0 = start
  /// times drawn uniformly from [0, arrivalWindow).
  double arrivalWindow = 0.0;
  /// Departure process: finite = exponential session lifetime with this
  /// mean (floored at minLifetime); infinity (default) = sessions run to
  /// the end of the experiment.
  double meanLifetime = std::numeric_limits<double>::infinity();
  double minLifetime = 50.0;

  /// Heterogeneous session mix; empty = all Coordinated with 8 layers.
  std::vector<SessionMix> mix;

  LossSpec loss;

  /// Forwarded into ClosedLoopConfig (see closed_loop.hpp).
  bool computeFairEpochs = false;
  int solverThreads = -1;
  double rateBinWidth = 0.0;
  /// Forwarded into ClosedLoopConfig::fluidFastForward: lets a preset
  /// opt into the fluid fast-forward engine (analytic steady-interval
  /// execution; see runClosedLoopSimulationFluid).
  bool fluidFastForward = false;

  std::uint64_t seed = 1;
};

/// A fully built experiment: expanded topology plus driver config. The
/// config's per-session entries may be edited freely before running
/// (benches pin specific lifetimes this way).
struct Scenario {
  std::string name;
  net::Network network;
  ClosedLoopConfig config;
};

/// Expands a spec deterministically (equal specs produce equal
/// scenarios). Throws PreconditionError on inconsistent parameters.
Scenario buildScenario(const ScenarioSpec& spec);

/// Convenience: runClosedLoopSimulation(s.network, s.config).
ClosedLoopResult runScenario(const Scenario& s);

/// Builds one loss model for a LossSpec (null for Kind::kNone). Exposed
/// for tests; buildScenario installs it for every link via
/// ClosedLoopConfig::linkLoss.
std::unique_ptr<LossModel> makeLossModel(const LossSpec& loss);

/// The named presets (stable order, unique names).
const std::vector<ScenarioSpec>& scenarioCatalog();

/// Catalog lookup by name; null when absent.
const ScenarioSpec* findScenario(std::string_view name);

}  // namespace mcfair::sim
