// Scenario engine: parameterized closed-loop experiment populations.
//
// The paper's Section 4 experiments are hand-built topologies with a
// handful of sessions; the scenario engine generalizes that driver into
// a generator for large, heterogeneous populations — the workloads the
// event-driven session engine exists for (10k-100k concurrent sessions).
// A ScenarioSpec describes a population statistically (session count,
// protocol mix, arrival/departure processes, private-tail capacity
// distribution, exogenous loss); buildScenario() expands it into a
// concrete Scenario — a net::Network plus a ClosedLoopConfig — fully
// deterministically from the spec's seed, so every scenario is
// reproducible and shareable by (name, seed) alone.
//
// The catalog (scenarioCatalog()) names the standard presets used by the
// benches: steady shared bottlenecks, heterogeneous protocol mixes with
// single-rate (CBR-like) competitors, flash-crowd arrivals, sustained
// churn with the fair-epoch reference enabled, lossy and bursty-loss
// backbones, and the mega-merge stress population for the packet-merge
// benchmarks.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "net/network.hpp"
#include "sim/closed_loop.hpp"

namespace mcfair::sim {

/// One entry of a heterogeneous session-population mix.
struct SessionMix {
  /// Protocol / layer configuration stamped onto sessions drawn from this
  /// entry. startTime/stopTime are overwritten by the spec's arrival and
  /// lifetime processes.
  ClosedLoopSessionConfig session;
  /// chi(S_i) recorded in the generated Network. kSingleRate models the
  /// paper's non-layered (CBR-like) competitors; pair it with
  /// session.layers == 1 so the sender cannot adapt its rate.
  net::SessionType type = net::SessionType::kMultiRate;
  /// Relative probability of drawing this entry; must be positive.
  double weight = 1.0;
};

/// Exogenous-loss selector, expanded into ClosedLoopConfig::linkLoss.
struct LossSpec {
  enum class Kind {
    kNone,            ///< endogenous (token-bucket) loss only
    kBernoulli,       ///< independent per-packet loss at `rate`
    kGilbertElliott,  ///< bursty loss averaging `rate` (see below)
  };
  Kind kind = Kind::kNone;
  /// Long-run average loss probability per link (both lossy kinds).
  double rate = 0.0;
  /// Gilbert-Elliott only: expected number of packets per bad-state
  /// burst (badToGood = 1 / meanBurst).
  double meanBurst = 8.0;
  /// Gilbert-Elliott only: loss probability inside the bad state; the
  /// good state is loss-free and goodToBad is solved so the stationary
  /// loss rate equals `rate`. Requires badLossRate > rate.
  double badLossRate = 0.5;
};

/// Fault-injection axis, expanded into ClosedLoopConfig::faults (see
/// net/fault.hpp). The expansion is load-aware: targeted kinds pick
/// their victim links from the routed session load the topology section
/// just computed, so "fail the busiest edge" means the same thing on a
/// shared link, a scale-free tree, and a routed mesh.
struct FaultAxis {
  enum class Kind {
    kNone,  ///< no faults (the default)
    /// The `links` most-crossed backbone edges flap: down at `start`,
    /// optionally degraded to `degradeFactor` at the midpoint of the
    /// outage, fully repaired at `repair`. Works on every topology
    /// (ties break toward the lower link id).
    kFlap,
    /// Every backbone edge incident to the highest-degree hub node goes
    /// down at `start` and is repaired at `repair` — the correlated
    /// regional outage. Mesh topologies only (a tree partition is just
    /// kFlap on the hub's up-edge).
    kPartition,
    /// Independent per-link MTBF/MTTR renewal processes over every link
    /// (tails included), drawn from the spec seed via
    /// net::randomFaultSchedule.
    kRandom,
  };
  Kind kind = Kind::kNone;
  /// kFlap: how many top-loaded backbone edges flap.
  std::size_t links = 1;
  /// kFlap / kPartition: outage window [start, repair).
  double start = 600.0;
  double repair = 1200.0;
  /// kFlap: when > 0, the outage passes through a degraded middle phase
  /// (capacity * degradeFactor at the window midpoint) instead of going
  /// straight from down to repaired — the down -> degrade -> up
  /// staircase the acceptance suite pins. Also the kRandom degrade
  /// factor (0 = failures take links fully down).
  double degradeFactor = 0.0;
  /// kRandom: mean time between failures / to repair per link.
  double mtbf = 400.0;
  double mttr = 60.0;
};

/// A parameterized closed-loop experiment population.
///
/// Topology: one shared backbone link (capacity scales with the session
/// count) — the shape of the paper's star experiments, scaled out — a
/// Barabási–Albert scale-free *tree* backbone (unique paths), or a
/// routed *mesh* backbone (BA m >= 2 / Waxman / random-regular graphs,
/// per-session multicast trees picked by a graph::RoutePlan); in every
/// case optionally plus one private tail link per receiver.
struct ScenarioSpec {
  /// Backbone shape.
  enum class Topology {
    /// One shared link crossed by every receiver (the default).
    kSharedLink,
    /// The *tree* scale-free variant: a Barabási–Albert preferential-
    /// attachment tree (m = 1) of backboneNodes nodes rooted at the
    /// sender side. Every session transmits from the root, each
    /// receiver sits at a uniformly drawn non-root node, and — because
    /// a tree has unique paths — its data-path is forced to be its root
    /// path; no routing decision exists. Degrees follow the scale-free
    /// power law, so a few hub edges carry most sessions — the
    /// bottleneck-distribution setting of the PAPERS.md (Sreenivasan et
    /// al.) study. For the graph variant, where paths are *chosen* by
    /// the routing layer rather than forced, see kScaleFreeGraph.
    kScaleFreeTree,
    /// Routed mesh: a Barabási–Albert graph with m = meshEdgesPerNode
    /// (>= 2 gives cycles). Each session gets a uniformly drawn sender
    /// node and receivers on other nodes; data-paths come from a
    /// graph::RoutePlan (weighted SPT over jittered link weights when
    /// meshWeightJitter > 0, hop count otherwise), so routing — not
    /// topology — picks the bottlenecks.
    kScaleFreeGraph,
    /// Routed mesh over a Waxman geometric random graph
    /// (waxmanAlpha/waxmanBeta) — the classic meshed-backbone model.
    kWaxman,
    /// Routed mesh over a random regularDegree-regular graph — the
    /// degree-homogeneous control for the scale-free families.
    kRandomRegular,
  };

  std::string name = "custom";
  std::string description;

  std::size_t sessions = 4;
  std::size_t receiversPerSession = 1;

  Topology topology = Topology::kSharedLink;
  /// Node count of the non-kSharedLink backbones (>= 2; ignored for
  /// kSharedLink).
  std::size_t backboneNodes = 32;

  /// kScaleFreeGraph: the BA "m" — edges each new node attaches with
  /// (>= 2 creates the cycles that make routing meaningful; requires
  /// backboneNodes > meshEdgesPerNode).
  std::size_t meshEdgesPerNode = 2;
  /// kWaxman link probability alpha * exp(-d / (beta * sqrt(2))).
  double waxmanAlpha = 0.6;
  double waxmanBeta = 0.35;
  /// kRandomRegular node degree (nodes * degree must be even).
  std::size_t regularDegree = 4;
  /// Mesh topologies: > 0 routes on per-link weights drawn uniformly
  /// from [1, 1 + jitter) — path diversity that makes routed paths
  /// deviate from (and occasionally be longer than) hop-shortest ones;
  /// 0 routes on hop count.
  double meshWeightJitter = 1.0;

  /// kSharedLink: backbone capacity = sessions * backbonePerSession
  /// (packets per time unit), so per-session contention is
  /// scale-invariant. Tree/mesh backbones: per-edge capacity =
  /// backbonePerSession * sessions whose routed paths cross the edge
  /// (load-proportional provisioning).
  double backbonePerSession = 2.0;
  /// kSharedLink only: number of DISJOINT backbone links the sessions
  /// round-robin across (session i crosses link i % bottleneckGroups),
  /// each provisioned for its own crossing count. 1 (the default) is the
  /// classic single shared bottleneck; > 1 yields that many independent
  /// link-set components — the workload the component-parallel engine
  /// (ClosedLoopConfig::engineThreads) spreads across threads. Adds no
  /// RNG draws, so group 1 replays existing seeds bit-identically.
  std::size_t bottleneckGroups = 1;
  /// When tailCapacityMax > 0, every receiver gets a private tail link
  /// with capacity uniform in [tailCapacityMin, tailCapacityMax] — the
  /// heterogeneous-receiver setting where multi-rate delivery pays off.
  double tailCapacityMin = 0.0;
  double tailCapacityMax = 0.0;

  double duration = 2000.0;
  double warmup = 500.0;

  /// Arrival process: 0 = every session starts at t = 0; > 0 = start
  /// times drawn uniformly from [0, arrivalWindow).
  double arrivalWindow = 0.0;
  /// Departure process: finite = exponential session lifetime with this
  /// mean (floored at minLifetime); infinity (default) = sessions run to
  /// the end of the experiment.
  double meanLifetime = std::numeric_limits<double>::infinity();
  double minLifetime = 50.0;

  /// Heterogeneous session mix; empty = all Coordinated with 8 layers.
  std::vector<SessionMix> mix;

  LossSpec loss;

  /// Fault-injection axis; expanded into ClosedLoopConfig::faults after
  /// the topology (and its routed link loads) is built.
  FaultAxis faults;

  /// Forwarded into ClosedLoopConfig (see closed_loop.hpp).
  bool computeFairEpochs = false;
  int solverThreads = -1;
  /// Forwarded into ClosedLoopConfig::engineThreads: thread count for
  /// the component-parallel transient engine (-1 = MCFAIR_SIM_THREADS).
  int engineThreads = -1;
  /// Forwarded into ClosedLoopConfig::speculationThreads: worker count
  /// for the speculative intra-component engine (0 disables the
  /// mega-merge dispatch, -1 inherits the resolved engine threads).
  int speculationThreads = -1;
  /// Forwarded into ClosedLoopConfig::speculativeEpochs: uniform epoch
  /// divisions for the speculative engine (0 = auto-size).
  std::size_t speculativeEpochs = 0;
  double rateBinWidth = 0.0;
  /// Forwarded into ClosedLoopConfig::fluidFastForward: lets a preset
  /// opt into the fluid fast-forward engine (analytic steady-interval
  /// execution; see runClosedLoopSimulationFluid).
  bool fluidFastForward = false;

  std::uint64_t seed = 1;
};

/// A fully built experiment: expanded topology plus driver config. The
/// config's per-session entries may be edited freely before running
/// (benches pin specific lifetimes this way).
struct Scenario {
  std::string name;
  net::Network network;
  ClosedLoopConfig config;
  /// Mesh topologies only (node count 0 otherwise): the backbone graph
  /// the data-paths were routed over. Network link j < linkCount() of
  /// the backbone is graph link j; tail links follow. Tests use it to
  /// check routed paths against the substrate (e.g. BFS-tree
  /// containment).
  graph::Graph backbone;
  /// Mesh topologies only: each session's sender node and each
  /// receiver's node (session-major, receiversPerSession per session).
  std::vector<graph::NodeId> senderNode;
  std::vector<graph::NodeId> receiverNode;
};

/// Expands a spec deterministically (equal specs produce equal
/// scenarios). Throws PreconditionError on inconsistent parameters.
Scenario buildScenario(const ScenarioSpec& spec);

/// Convenience: runClosedLoopSimulation(s.network, s.config).
ClosedLoopResult runScenario(const Scenario& s);

/// Builds one loss model for a LossSpec (null for Kind::kNone). Exposed
/// for tests; buildScenario installs it for every link via
/// ClosedLoopConfig::linkLoss.
std::unique_ptr<LossModel> makeLossModel(const LossSpec& loss);

/// The named presets (stable order, unique names).
const std::vector<ScenarioSpec>& scenarioCatalog();

/// Catalog lookup by name; null when absent.
const ScenarioSpec* findScenario(std::string_view name);

}  // namespace mcfair::sim
