#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/generators.hpp"
#include "graph/route_plan.hpp"
#include "net/fault.hpp"
#include "util/error.hpp"

namespace mcfair::sim {

namespace {

// Draws one mix entry index by relative weight.
std::size_t drawMixEntry(const std::vector<SessionMix>& mix,
                         double totalWeight, util::Rng& rng) {
  double u = rng.uniform01() * totalWeight;
  for (std::size_t m = 0; m < mix.size(); ++m) {
    u -= mix[m].weight;
    if (u < 0.0) return m;
  }
  return mix.size() - 1;
}

}  // namespace

std::unique_ptr<LossModel> makeLossModel(const LossSpec& loss) {
  switch (loss.kind) {
    case LossSpec::Kind::kNone:
      return nullptr;
    case LossSpec::Kind::kBernoulli:
      return std::make_unique<BernoulliLoss>(loss.rate);
    case LossSpec::Kind::kGilbertElliott: {
      // Stationary loss rate of GilbertElliottLoss with a loss-free good
      // state is g * pBad / (g + b); solve g for the requested average.
      MCFAIR_REQUIRE(loss.meanBurst >= 1.0,
                     "GilbertElliott meanBurst must be >= 1");
      MCFAIR_REQUIRE(loss.badLossRate > loss.rate && loss.rate >= 0.0,
                     "GilbertElliott needs badLossRate > rate >= 0");
      const double badToGood = 1.0 / loss.meanBurst;
      const double goodToBad =
          loss.rate * badToGood / (loss.badLossRate - loss.rate);
      return std::make_unique<GilbertElliottLoss>(goodToBad, badToGood, 0.0,
                                                 loss.badLossRate);
    }
  }
  return nullptr;
}

Scenario buildScenario(const ScenarioSpec& spec) {
  MCFAIR_REQUIRE(spec.sessions >= 1, "scenario needs >= 1 session");
  MCFAIR_REQUIRE(spec.receiversPerSession >= 1,
                 "scenario needs >= 1 receiver per session");
  MCFAIR_REQUIRE(spec.backbonePerSession > 0.0,
                 "backbonePerSession must be positive");
  MCFAIR_REQUIRE(spec.bottleneckGroups >= 1,
                 "bottleneckGroups must be >= 1");
  MCFAIR_REQUIRE(spec.topology == ScenarioSpec::Topology::kSharedLink ||
                     spec.bottleneckGroups == 1,
                 "bottleneckGroups > 1 is a kSharedLink knob");
  MCFAIR_REQUIRE(spec.topology == ScenarioSpec::Topology::kSharedLink ||
                     spec.backboneNodes >= 2,
                 "graph backbones need >= 2 nodes");
  MCFAIR_REQUIRE(spec.topology != ScenarioSpec::Topology::kScaleFreeGraph ||
                     (spec.meshEdgesPerNode >= 1 &&
                      spec.backboneNodes > spec.meshEdgesPerNode),
                 "scale-free mesh needs 1 <= meshEdgesPerNode < "
                 "backboneNodes");
  MCFAIR_REQUIRE(spec.meshWeightJitter >= 0.0,
                 "meshWeightJitter must be >= 0");
  MCFAIR_REQUIRE(spec.tailCapacityMax == 0.0 ||
                     (spec.tailCapacityMin > 0.0 &&
                      spec.tailCapacityMin <= spec.tailCapacityMax),
                 "need 0 < tailCapacityMin <= tailCapacityMax (or max = 0)");
  MCFAIR_REQUIRE(spec.arrivalWindow >= 0.0 &&
                     spec.arrivalWindow < spec.duration,
                 "arrivalWindow must lie inside [0, duration)");
  MCFAIR_REQUIRE(spec.meanLifetime > 0.0 && spec.minLifetime > 0.0,
                 "lifetimes must be positive");
  if (spec.faults.kind == FaultAxis::Kind::kFlap ||
      spec.faults.kind == FaultAxis::Kind::kPartition) {
    MCFAIR_REQUIRE(spec.faults.start >= 0.0 &&
                       spec.faults.repair > spec.faults.start,
                   "fault axis needs 0 <= start < repair");
  }
  MCFAIR_REQUIRE(
      spec.faults.kind != FaultAxis::Kind::kFlap || spec.faults.links >= 1,
      "kFlap needs links >= 1");
  MCFAIR_REQUIRE(spec.faults.kind != FaultAxis::Kind::kRandom ||
                     (spec.faults.mtbf > 0.0 && spec.faults.mttr > 0.0),
                 "kRandom needs positive mtbf and mttr");

  std::vector<SessionMix> mix = spec.mix;
  if (mix.empty()) {
    mix.push_back(SessionMix{});  // Coordinated, 8 layers (the defaults)
  }
  double totalWeight = 0.0;
  for (const auto& m : mix) {
    MCFAIR_REQUIRE(m.weight > 0.0, "mix weights must be positive");
    MCFAIR_REQUIRE(m.type == net::SessionType::kMultiRate ||
                       spec.receiversPerSession == 1 ||
                       m.session.layers == 1,
                   "single-rate mix entries with several receivers need "
                   "layers == 1 (one uniform rate)");
    totalWeight += m.weight;
  }

  // Structure and dynamics are drawn from separate child streams so that
  // adding a knob to one cannot silently reshuffle the other.
  util::Rng root(spec.seed);
  util::Rng topologyRng = root.split();
  util::Rng mixRng = root.split();
  util::Rng dynamicsRng = root.split();
  util::Rng faultRng = root.split();

  Scenario s;
  s.name = spec.name;

  // Mix choices come off their own stream up front, so the topology
  // branch below cannot perturb them (and the kSharedLink per-stream
  // draw sequences stay exactly what they were before the scale-free
  // generator existed).
  std::vector<std::size_t> mixChoice(spec.sessions);
  for (std::size_t i = 0; i < spec.sessions; ++i) {
    mixChoice[i] = drawMixEntry(mix, totalWeight, mixRng);
  }

  const bool scaleFree =
      spec.topology == ScenarioSpec::Topology::kScaleFreeTree;
  const bool mesh =
      spec.topology == ScenarioSpec::Topology::kScaleFreeGraph ||
      spec.topology == ScenarioSpec::Topology::kWaxman ||
      spec.topology == ScenarioSpec::Topology::kRandomRegular;
  MCFAIR_REQUIRE(spec.faults.kind != FaultAxis::Kind::kPartition || mesh,
                 "kPartition targets a mesh hub; use kFlap on tree or "
                 "shared-link topologies");
  // kSharedLink: the disjoint backbone links sessions round-robin
  // across (groupLinks[i % groups]; one entry when bottleneckGroups=1).
  std::vector<graph::LinkId> groupLinks;
  // Sessions crossing each backbone link — the load the targeted fault
  // kinds pick their victims from (tails are never load-targeted).
  std::vector<std::size_t> backboneLoad;
  // kScaleFreeTree structure: parent pointers of the preferential-
  // attachment tree, each receiver's node, and one link per tree edge
  // (edgeLink[v] is the up-edge of non-root node v).
  std::vector<std::size_t> parent;
  std::vector<std::size_t> receiverNode;  // session-major, per receiver
  std::vector<graph::LinkId> edgeLink;
  // Mesh structure: routed per-receiver backbone paths (session-major).
  std::vector<std::vector<graph::LinkId>> meshPath;
  if (mesh) {
    // Substrate first, all draws off the topology stream.
    graph::Graph g;
    switch (spec.topology) {
      case ScenarioSpec::Topology::kScaleFreeGraph:
        g = graph::scaleFreeGraph(
            topologyRng, {spec.backboneNodes, spec.meshEdgesPerNode, 1.0});
        break;
      case ScenarioSpec::Topology::kWaxman:
        g = graph::waxmanGraph(topologyRng, {spec.backboneNodes,
                                             spec.waxmanAlpha,
                                             spec.waxmanBeta, 1.0});
        break;
      default:
        g = graph::randomRegularGraph(
            topologyRng, {spec.backboneNodes, spec.regularDegree, 1.0, 200});
        break;
    }
    // Routing policy: jittered link weights give path diversity (routed
    // paths deviate from hop-shortest ones), hop count otherwise.
    graph::RouteOptions ropts;
    if (spec.meshWeightJitter > 0.0) {
      ropts.policy = graph::RoutePolicy::kWeighted;
      ropts.weights.reserve(g.linkCount());
      for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
        ropts.weights.push_back(
            topologyRng.uniform(1.0, 1.0 + spec.meshWeightJitter));
      }
    }
    graph::RoutePlan plan(g, std::move(ropts));
    // Member placement: uniform sender per session, receivers on other
    // nodes; the plan caches one SPT per distinct sender, so large
    // populations on a fixed-size backbone stay cheap.
    meshPath.resize(spec.sessions * spec.receiversPerSession);
    s.senderNode.reserve(spec.sessions);
    s.receiverNode.reserve(meshPath.size());
    for (std::size_t i = 0; i < spec.sessions; ++i) {
      const graph::NodeId sender{
          static_cast<std::uint32_t>(topologyRng.below(g.nodeCount()))};
      s.senderNode.push_back(sender);
      for (std::size_t k = 0; k < spec.receiversPerSession; ++k) {
        std::uint32_t node =
            static_cast<std::uint32_t>(topologyRng.below(g.nodeCount()));
        while (node == sender.value) {
          node = static_cast<std::uint32_t>(topologyRng.below(g.nodeCount()));
        }
        s.receiverNode.push_back(graph::NodeId{node});
        meshPath[i * spec.receiversPerSession + k] =
            plan.path(sender, graph::NodeId{node});
      }
    }
    // Load-proportional provisioning: a session crosses a link when any
    // of its receivers' routed paths does (stamp-deduplicated), and
    // each link is provisioned backbonePerSession per crossing session.
    std::vector<std::size_t> crossing(g.linkCount(), 0);
    std::vector<std::uint32_t> stamp(g.linkCount(), 0);
    for (std::size_t i = 0; i < spec.sessions; ++i) {
      for (std::size_t k = 0; k < spec.receiversPerSession; ++k) {
        for (const graph::LinkId l :
             meshPath[i * spec.receiversPerSession + k]) {
          if (stamp[l.value] == i + 1) continue;
          stamp[l.value] = static_cast<std::uint32_t>(i + 1);
          ++crossing[l.value];
        }
      }
    }
    for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
      s.network.addLink(spec.backbonePerSession *
                        static_cast<double>(
                            std::max<std::size_t>(1, crossing[l])));
    }
    backboneLoad = crossing;
    s.backbone = std::move(g);
  } else if (!scaleFree) {
    // Disjoint shared bottlenecks: session i crosses group i % groups,
    // each link provisioned for exactly its crossing count. groups = 1
    // is the classic single shared link (and draws nothing from any RNG
    // stream, so existing seeds replay bit-identically).
    const std::size_t groups =
        std::min(spec.bottleneckGroups, spec.sessions);
    groupLinks.reserve(groups);
    backboneLoad.assign(groups, 0);
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t load =
          spec.sessions / groups + (g < spec.sessions % groups ? 1 : 0);
      groupLinks.push_back(s.network.addLink(
          static_cast<double>(load) * spec.backbonePerSession));
      backboneLoad[g] = load;
    }
  } else {
    const std::size_t nodes = spec.backboneNodes;
    parent.assign(nodes, 0);
    // Classic BA growth with m = 1: each endpoint slot of the edge list
    // appears once per incident edge, so a uniform draw over the slots
    // attaches the new node with probability proportional to degree.
    std::vector<std::size_t> endpoints;
    endpoints.reserve(2 * (nodes - 1));
    for (std::size_t v = 1; v < nodes; ++v) {
      parent[v] =
          v == 1 ? 0 : endpoints[topologyRng.below(endpoints.size())];
      endpoints.push_back(parent[v]);
      endpoints.push_back(v);
    }
    // Receiver placement, then per-edge session counts (a session
    // crosses an edge when any of its receivers' root paths does) for
    // load-proportional provisioning: hub edges near the root carry many
    // sessions and get capacity to match, leaf edges stay thin — the
    // scale-free bottleneck distribution.
    receiverNode.resize(spec.sessions * spec.receiversPerSession);
    std::vector<std::size_t> crossing(nodes, 0);
    std::vector<std::uint32_t> seenBySession(nodes, 0);
    for (std::size_t i = 0; i < spec.sessions; ++i) {
      for (std::size_t k = 0; k < spec.receiversPerSession; ++k) {
        const std::size_t node = 1 + topologyRng.below(nodes - 1);
        receiverNode[i * spec.receiversPerSession + k] = node;
        for (std::size_t v = node; v != 0; v = parent[v]) {
          if (seenBySession[v] == i + 1) break;  // rest of path counted
          seenBySession[v] = static_cast<std::uint32_t>(i + 1);
          ++crossing[v];
        }
      }
    }
    edgeLink.resize(nodes);
    backboneLoad.assign(nodes - 1, 0);
    for (std::size_t v = 1; v < nodes; ++v) {
      edgeLink[v] = s.network.addLink(
          spec.backbonePerSession *
          static_cast<double>(std::max<std::size_t>(1, crossing[v])));
      backboneLoad[edgeLink[v].value] = crossing[v];
    }
  }

  s.config.duration = spec.duration;
  s.config.warmup = spec.warmup;
  s.config.rateBinWidth = spec.rateBinWidth;
  s.config.computeFairEpochs = spec.computeFairEpochs;
  s.config.solverThreads = spec.solverThreads;
  s.config.engineThreads = spec.engineThreads;
  s.config.speculationThreads = spec.speculationThreads;
  s.config.speculativeEpochs = spec.speculativeEpochs;
  s.config.fluidFastForward = spec.fluidFastForward;
  s.config.seed = spec.seed;
  s.config.sessions.reserve(spec.sessions);

  for (std::size_t i = 0; i < spec.sessions; ++i) {
    const SessionMix& entry = mix[mixChoice[i]];
    net::Session session;
    session.type = entry.type;
    session.name = "S" + std::to_string(i + 1);
    for (std::size_t k = 0; k < spec.receiversPerSession; ++k) {
      std::vector<graph::LinkId> path;
      if (mesh) {
        path = std::move(meshPath[i * spec.receiversPerSession + k]);
      } else if (scaleFree) {
        for (std::size_t v = receiverNode[i * spec.receiversPerSession + k];
             v != 0; v = parent[v]) {
          path.push_back(edgeLink[v]);
        }
      } else {
        path.push_back(groupLinks[i % groupLinks.size()]);
      }
      if (spec.tailCapacityMax > 0.0) {
        path.push_back(s.network.addLink(topologyRng.uniform(
            spec.tailCapacityMin, spec.tailCapacityMax)));
      }
      session.receivers.push_back(net::makeReceiver(
          std::move(path),
          "r" + std::to_string(i + 1) + "," + std::to_string(k + 1)));
    }
    s.network.addSession(std::move(session));

    ClosedLoopSessionConfig sc = entry.session;
    sc.startTime = spec.arrivalWindow > 0.0
                       ? dynamicsRng.uniform(0.0, spec.arrivalWindow)
                       : 0.0;
    if (std::isfinite(spec.meanLifetime)) {
      // Exponential lifetime via inverse transform; 1 - u avoids log(0).
      const double life =
          -spec.meanLifetime * std::log(1.0 - dynamicsRng.uniform01());
      sc.stopTime = sc.startTime + std::max(spec.minLifetime, life);
    }
    s.config.sessions.push_back(sc);
  }

  if (spec.faults.kind == FaultAxis::Kind::kRandom) {
    net::RandomFaultOptions fopt;
    fopt.mtbf = spec.faults.mtbf;
    fopt.mttr = spec.faults.mttr;
    fopt.degradeFactor = spec.faults.degradeFactor;
    s.config.faults = net::randomFaultSchedule(
        s.network.linkCount(), spec.duration, fopt, faultRng());
  } else if (spec.faults.kind != FaultAxis::Kind::kNone) {
    std::vector<graph::LinkId> victims;
    if (spec.faults.kind == FaultAxis::Kind::kFlap) {
      // The `links` most-crossed backbone edges, ties to the lower id.
      std::vector<std::uint32_t> order(backboneLoad.size());
      for (std::uint32_t l = 0; l < order.size(); ++l) order[l] = l;
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (backboneLoad[a] != backboneLoad[b]) {
                    return backboneLoad[a] > backboneLoad[b];
                  }
                  return a < b;
                });
      const std::size_t n = std::min(spec.faults.links, order.size());
      for (std::size_t i = 0; i < n; ++i) {
        victims.push_back(graph::LinkId{order[i]});
      }
    } else {  // kPartition: everything incident to the busiest hub
      graph::NodeId hub{0};
      std::size_t hubDegree = 0;
      for (std::uint32_t v = 0; v < s.backbone.nodeCount(); ++v) {
        const std::size_t d = s.backbone.neighbors(graph::NodeId{v}).size();
        if (d > hubDegree) {
          hubDegree = d;
          hub = graph::NodeId{v};
        }
      }
      for (const graph::Adjacency& a : s.backbone.neighbors(hub)) {
        victims.push_back(a.link);
      }
    }
    const double mid =
        spec.faults.start + 0.5 * (spec.faults.repair - spec.faults.start);
    for (const graph::LinkId l : victims) {
      s.config.faults.events.push_back(
          net::FaultEvent{spec.faults.start, net::FaultKind::kLinkDown, l});
      if (spec.faults.kind == FaultAxis::Kind::kFlap &&
          spec.faults.degradeFactor > 0.0) {
        s.config.faults.events.push_back(
            net::FaultEvent{mid, net::FaultKind::kDegrade, l,
                            spec.faults.degradeFactor});
      }
      s.config.faults.events.push_back(
          net::FaultEvent{spec.faults.repair, net::FaultKind::kLinkUp, l});
    }
  }
  s.config.faults.normalize(s.network.linkCount());

  if (spec.loss.kind != LossSpec::Kind::kNone) {
    s.config.linkLoss = [loss = spec.loss](graph::LinkId) {
      return makeLossModel(loss);
    };
  }
  return s;
}

ClosedLoopResult runScenario(const Scenario& s) {
  return runClosedLoopSimulation(s.network, s.config);
}

const std::vector<ScenarioSpec>& scenarioCatalog() {
  static const std::vector<ScenarioSpec> catalog = [] {
    std::vector<ScenarioSpec> v;

    {
      ScenarioSpec s;
      s.name = "steady-bottleneck";
      s.description =
          "8 homogeneous Coordinated sessions on one shared backbone; the "
          "baseline convergence workload";
      s.sessions = 8;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "heterogeneous-mix";
      s.description =
          "12 sessions mixing all three layered protocols with single-rate "
          "(CBR-like) competitors, heterogeneous private tails";
      s.sessions = 12;
      s.tailCapacityMin = 1.0;
      s.tailCapacityMax = 16.0;
      s.mix = {
          SessionMix{{ProtocolKind::kCoordinated, 6, 1},
                     net::SessionType::kMultiRate, 3.0},
          SessionMix{{ProtocolKind::kDeterministic, 6, 1},
                     net::SessionType::kMultiRate, 2.0},
          SessionMix{{ProtocolKind::kUncoordinated, 6, 1},
                     net::SessionType::kMultiRate, 2.0},
          SessionMix{{ProtocolKind::kDeterministic, 1, 1},
                     net::SessionType::kSingleRate, 1.0},
      };
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "flash-crowd";
      s.description =
          "16 sessions all arriving within the first 200 time units — the "
          "Section 5 startup transient, en masse";
      s.sessions = 16;
      s.arrivalWindow = 200.0;
      s.warmup = 400.0;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "churn";
      s.description =
          "12 sessions with staggered arrivals and exponential lifetimes; "
          "fair epochs recomputed at every boundary (the incremental "
          "solver's churn workload)";
      s.sessions = 12;
      s.arrivalWindow = 1000.0;
      s.meanLifetime = 600.0;
      s.minLifetime = 100.0;
      s.warmup = 0.0;
      s.computeFairEpochs = true;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "lossy-backbone";
      s.description =
          "8 sessions with 2% independent exogenous loss on every link on "
          "top of the endogenous token-bucket drops (the paper's Bernoulli "
          "model, closed-loop)";
      s.sessions = 8;
      s.loss.kind = LossSpec::Kind::kBernoulli;
      s.loss.rate = 0.02;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "bursty-loss";
      s.description =
          "8 sessions under Gilbert-Elliott loss averaging 2% in bursts of "
          "~12 packets — the temporally-correlated sensitivity study";
      s.sessions = 8;
      s.loss.kind = LossSpec::Kind::kGilbertElliott;
      s.loss.rate = 0.02;
      s.loss.meanBurst = 12.0;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "scale-free-backbone";
      s.description =
          "24 sessions, 2 receivers each, routed over a 48-node "
          "Barabasi-Albert tree backbone: hub edges near the root carry "
          "most sessions (power-law bottleneck distribution, per the "
          "PAPERS.md Sreenivasan et al. study)";
      s.sessions = 24;
      s.receiversPerSession = 2;
      s.topology = ScenarioSpec::Topology::kScaleFreeTree;
      s.backboneNodes = 48;
      s.mix = {SessionMix{{ProtocolKind::kCoordinated, 6, 1},
                          net::SessionType::kMultiRate, 1.0}};
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "steady-fluid";
      s.description =
          "Analytically steady large population: born-absorbing 4-layer "
          "Deterministic sessions (initialLevel == layers) on an amply "
          "provisioned backbone — the fluid fast-forward engine certifies "
          "the whole run drop-free and executes it in closed form "
          "(override `sessions` to sweep)";
      s.sessions = 10000;
      s.backbonePerSession = 10.0;  // aggregate session rate is 8
      s.duration = 40.0;
      s.warmup = 10.0;
      s.mix = {SessionMix{{ProtocolKind::kDeterministic, 4, 4},
                          net::SessionType::kMultiRate, 1.0}};
      s.fluidFastForward = true;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "mega-merge";
      s.description =
          "Large-N merge stress: 10k single-layer sessions on one "
          "backbone, short horizon — isolates the per-packet merge cost "
          "the event-driven engine removes (override `sessions` to sweep)";
      s.sessions = 10000;
      s.backbonePerSession = 0.5;
      s.duration = 10.0;
      s.warmup = 2.0;
      s.mix = {SessionMix{{ProtocolKind::kDeterministic, 1, 1},
                          net::SessionType::kMultiRate, 1.0}};
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "sharded-bottlenecks";
      s.description =
          "512 congested 3-layer Coordinated sessions round-robined "
          "across 64 disjoint shared bottlenecks (bottleneckGroups), "
          "each provisioned at 1.0 per session against an aggregate "
          "demand of 4 — 64 independent link-set components, the "
          "component-parallel transient engine's reference workload "
          "(override `sessions`/`engineThreads` to sweep)";
      s.sessions = 512;
      s.bottleneckGroups = 64;
      s.backbonePerSession = 1.0;
      s.duration = 10.0;
      s.warmup = 2.0;
      s.mix = {SessionMix{{ProtocolKind::kCoordinated, 3, 1},
                          net::SessionType::kMultiRate, 1.0}};
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "meshed-backbone";
      s.description =
          "24 sessions, 2 receivers each, routed over a 48-node "
          "Barabasi-Albert m=2 mesh: the graph has cycles, so the "
          "routing layer (weighted SPT over jittered link weights, "
          "lowest-id tie-break) — not the topology — picks each "
          "session's distribution tree; per-edge capacity is "
          "proportional to routed load";
      s.sessions = 24;
      s.receiversPerSession = 2;
      s.topology = ScenarioSpec::Topology::kScaleFreeGraph;
      s.backboneNodes = 48;
      s.meshEdgesPerNode = 2;
      s.mix = {SessionMix{{ProtocolKind::kCoordinated, 6, 1},
                          net::SessionType::kMultiRate, 1.0}};
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "link-flap";
      s.description =
          "16 sessions, 2 receivers each, on a 32-node Barabasi-Albert "
          "m=2 mesh whose two busiest routed edges flap (down at t=600, "
          "degraded to half capacity at t=900, repaired at t=1200); the "
          "fluid engine fast-forwards up to the fault, runs per-packet "
          "through the disruption, and re-engages after repair";
      s.sessions = 16;
      s.receiversPerSession = 2;
      s.topology = ScenarioSpec::Topology::kScaleFreeGraph;
      s.backboneNodes = 32;
      s.meshEdgesPerNode = 2;
      s.mix = {SessionMix{{ProtocolKind::kCoordinated, 6, 1},
                          net::SessionType::kMultiRate, 1.0}};
      s.faults.kind = FaultAxis::Kind::kFlap;
      s.faults.links = 2;
      s.faults.start = 600.0;
      s.faults.repair = 1200.0;
      s.faults.degradeFactor = 0.5;
      s.fluidFastForward = true;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "backbone-partition";
      s.description =
          "16 sessions, 2 receivers each, on a 48-node Waxman mesh whose "
          "highest-degree hub loses every incident edge at t=700 until "
          "t=1400 — the correlated regional outage; receivers behind the "
          "partition degrade to their surviving layers and the fair-epoch "
          "reference (recomputed at each fault boundary) zeroes the "
          "severed receivers";
      s.sessions = 16;
      s.receiversPerSession = 2;
      s.topology = ScenarioSpec::Topology::kWaxman;
      s.backboneNodes = 48;
      s.faults.kind = FaultAxis::Kind::kPartition;
      s.faults.start = 700.0;
      s.faults.repair = 1400.0;
      s.computeFairEpochs = true;
      s.warmup = 0.0;
      v.push_back(std::move(s));
    }
    {
      ScenarioSpec s;
      s.name = "waxman-regional";
      s.description =
          "16 sessions, 2 receivers each, on a 64-node Waxman "
          "geometric random graph (alpha 0.6, beta 0.35) with "
          "heterogeneous private tails — the meshed regional-backbone "
          "setting of the PAPERS.md ATM fairness studies";
      s.sessions = 16;
      s.receiversPerSession = 2;
      s.topology = ScenarioSpec::Topology::kWaxman;
      s.backboneNodes = 64;
      s.tailCapacityMin = 1.0;
      s.tailCapacityMax = 16.0;
      v.push_back(std::move(s));
    }
    return v;
  }();
  return catalog;
}

const ScenarioSpec* findScenario(std::string_view name) {
  for (const ScenarioSpec& s : scenarioCatalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace mcfair::sim
