// The layered multicast sender of Section 4.
//
// Each layer L_k emits packets periodically at the layer's rate; the
// merged, time-ordered packet stream is produced one packet at a time.
// Layer-1 packets carry the Coordinated protocol's nested join signals:
// the n-th layer-1 packet carries signal level g(n) = 1 + nu2(n) (the
// binary ruler sequence, capped at layerCount-1), so a signal of level
// >= i appears exactly every 2^(i-1) layer-1 packets. Because layer 1 has
// rate 1, a receiver joined up to layer i (aggregate rate 2^(i-1))
// receives an expected 2^(i-1) * 2^(i-1) = 2^(2(i-1)) packets between
// consecutive level-i signals — the join spacing the paper specifies
// (footnote 8, after [19]).
#pragma once

#include <cstdint>

#include "layering/layers.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace mcfair::sim {

/// One transmitted packet.
struct Packet {
  std::uint64_t sequence = 0;  ///< global emission order
  std::size_t layer = 1;       ///< 1-based layer number
  double time = 0.0;           ///< emission time
  /// Join-signal level for the Coordinated protocol; 0 = no signal.
  /// A signal of level g invites receivers joined up to any layer i <= g
  /// to join layer i+1 (the paper's nested-signal semantics).
  std::size_t syncLevel = 0;
};

/// Generates the merged layered packet stream.
class LayeredSender {
 public:
  /// `scheme` fixes layer count and rates. Emission of every layer starts
  /// at its period (first packet of layer k at time 1/rate_k). When
  /// `phaseJitter` is given, each layer's start is additionally offset by
  /// a uniform fraction of its period — used by multi-sender simulations
  /// to avoid lock-step phase artifacts between sessions (rates are
  /// unchanged).
  explicit LayeredSender(layering::LayerScheme scheme,
                         util::Rng* phaseJitter = nullptr);

  /// Produces the next packet in global time order.
  Packet next();

  const layering::LayerScheme& scheme() const noexcept { return scheme_; }

  /// Number of packets emitted so far.
  std::uint64_t emitted() const noexcept { return emitted_; }

  /// The ruler signal level for the n-th (1-based) layer-1 packet:
  /// 1 + (number of times 2 divides n), capped at `maxLevel`.
  static std::size_t rulerSignalLevel(std::uint64_t n, std::size_t maxLevel);

 private:
  layering::LayerScheme scheme_;
  EventQueue queue_;
  std::uint64_t emitted_ = 0;
  std::uint64_t layer1Count_ = 0;
};

}  // namespace mcfair::sim
