#include "sim/closed_loop.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fairness/maxmin.hpp"
#include "sim/event_queue.hpp"
#include "sim/sender.hpp"
#include "util/error.hpp"

namespace mcfair::sim {

namespace {

// Continuous-refill token bucket enforcing a link's capacity.
class TokenBucket {
 public:
  TokenBucket(double rate, double depth)
      : rate_(rate), depth_(depth), tokens_(depth) {}

  /// Consumes one token at time `now`; false = drop.
  bool admit(double now) {
    tokens_ = std::min(depth_, tokens_ + rate_ * (now - lastRefill_));
    lastRefill_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

 private:
  double rate_;
  double depth_;
  double tokens_;
  double lastRefill_ = 0.0;
};

// The piecewise-constant fair reference: between consecutive session
// start/stop boundaries the set of live sessions is constant, so one
// max-min solve per epoch suffices. A single MaxMinSolver is reused
// across the epochs, which is exactly the churn workload its incremental
// workspace is built for — and the one worker pool it owns (when
// solverThreads enables the parallel sweeps) rides along for every epoch.
std::vector<FairEpoch> buildFairEpochs(
    const net::Network& network,
    const std::vector<ClosedLoopSessionConfig>& sessionConfigs,
    double duration, int solverThreads) {
  std::vector<double> bounds;
  bounds.push_back(0.0);
  bounds.push_back(duration);
  for (const auto& sc : sessionConfigs) {
    if (sc.startTime > 0.0 && sc.startTime < duration) {
      bounds.push_back(sc.startTime);
    }
    if (sc.stopTime > 0.0 && sc.stopTime < duration) {
      bounds.push_back(sc.stopTime);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  fairness::MaxMinOptions solverOptions;
  solverOptions.threads = solverThreads;
  fairness::MaxMinSolver solver(solverOptions);
  std::vector<FairEpoch> epochs;
  epochs.reserve(bounds.size() - 1);
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    FairEpoch epoch;
    epoch.begin = bounds[b];
    epoch.end = bounds[b + 1];
    for (std::size_t i = 0; i < network.sessionCount(); ++i) {
      if (sessionConfigs[i].startTime <= epoch.begin &&
          sessionConfigs[i].stopTime >= epoch.end) {
        epoch.sessions.push_back(i);
      }
    }
    if (!epoch.sessions.empty()) {
      net::Network live;
      for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
        live.addLink(network.capacity(graph::LinkId{j}));
      }
      for (const std::size_t i : epoch.sessions) {
        live.addSession(network.session(i));
      }
      const fairness::Allocation& a = solver.solveAllocation(live);
      epoch.fairRate.reserve(epoch.sessions.size());
      for (std::size_t s = 0; s < epoch.sessions.size(); ++s) {
        const auto rates = a.sessionRates(s);
        epoch.fairRate.emplace_back(rates.begin(), rates.end());
      }
    }
    epochs.push_back(std::move(epoch));
  }
  return epochs;
}

// Everything both drivers share: validation, protocol state machines,
// token buckets, optional exogenous loss models, and the measurement
// accumulators. The drivers differ only in how they merge the senders'
// streams into time order; each merged packet is handed to
// processPacket(), so trajectories are identical whenever the merge
// orders agree (they do — packet times are distinct across sessions
// almost surely because every layer stream carries a random phase
// offset, and within a session the sender orders its own layers).
//
// After construction, processPacket() performs no heap allocation: all
// scratch (touched-link marks, the touched list at its high-water mark)
// is preallocated here.
class SimCore {
 public:
  SimCore(const net::Network& network, const ClosedLoopConfig& config)
      : network_(network), config_(config) {
    MCFAIR_REQUIRE(network.sessionCount() >= 1, "need at least one session");
    MCFAIR_REQUIRE(config.sessions.empty() ||
                       config.sessions.size() == network.sessionCount(),
                   "sessions config must be empty or one entry per session");
    MCFAIR_REQUIRE(config.duration > 0.0 && config.warmup >= 0.0 &&
                       config.warmup < config.duration,
                   "need 0 <= warmup < duration");
    MCFAIR_REQUIRE(config.tokenBurst > 0.0, "tokenBurst must be positive");

    const std::size_t nSessions = network.sessionCount();
    sessionConfigs_ = config.sessions;
    if (sessionConfigs_.empty()) sessionConfigs_.resize(nSessions);

    util::Rng root(config.seed);

    // One sender and one set of protocol receivers per session. The
    // split() order (phase stream first, then one receiver stream per
    // receiver in session order) is part of the reproducibility contract:
    // equal seeds replay equal experiments across library versions.
    receivers_.resize(nSessions);
    receiverRng_.resize(nSessions);
    senders_.reserve(nSessions);
    util::Rng phaseRng = root.split();
    for (std::size_t i = 0; i < nSessions; ++i) {
      const auto& sc = sessionConfigs_[i];
      MCFAIR_REQUIRE(sc.layers >= 1, "sessions need at least one layer");
      MCFAIR_REQUIRE(sc.startTime >= 0.0 && sc.startTime < sc.stopTime,
                     "need 0 <= startTime < stopTime");
      senders_.emplace_back(layering::LayerScheme::exponential(sc.layers),
                            &phaseRng);
      const std::size_t nr = network.session(i).receivers.size();
      for (std::size_t k = 0; k < nr; ++k) {
        receivers_[i].emplace_back(sc.protocol, sc.layers, sc.initialLevel);
        receiverRng_[i].push_back(root.split());
      }
    }

    buckets_.reserve(network.linkCount());
    for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
      const double c = network.capacity(graph::LinkId{j});
      buckets_.emplace_back(c, std::max(1.0, c * config.tokenBurst));
    }

    // Exogenous loss plumbing. The per-link RNG streams are split after
    // all protocol streams so lossless configurations replay the exact
    // RNG sequences of earlier library versions.
    if (config.linkLoss) {
      linkLoss_.reserve(network.linkCount());
      lossRng_.reserve(network.linkCount());
      for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
        linkLoss_.push_back(config.linkLoss(graph::LinkId{j}));
        lossRng_.push_back(root.split());
      }
    }

    // Measurement accumulators.
    delivered_.resize(nSessions);
    levelIntegral_.resize(nSessions);
    levelSamples_.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      const std::size_t nr = network.session(i).receivers.size();
      delivered_[i].assign(nr, 0);
      levelIntegral_[i].assign(nr, 0.0);
      levelSamples_[i].assign(nr, 0);
    }
    linkForwarded_.assign(network.linkCount(), 0);
    linkOffered_.assign(network.linkCount(), 0);
    linkDropped_.assign(network.linkCount(), 0);
    sessionForwarded_.assign(
        nSessions, std::vector<std::uint64_t>(network.linkCount(), 0));

    // Optional per-bin delivery timeline.
    nBins_ = config.rateBinWidth > 0.0
                 ? static_cast<std::size_t>(
                       std::ceil(config.duration / config.rateBinWidth))
                 : 0;
    if (nBins_ > 0) {
      binDelivered_.resize(nSessions);
      for (std::size_t i = 0; i < nSessions; ++i) {
        binDelivered_[i].assign(network.session(i).receivers.size(),
                                std::vector<std::uint64_t>(nBins_, 0));
      }
    }

    // Scratch marks, reused per packet. The touched list can hold at most
    // one entry per link.
    linkTouched_.assign(network.linkCount(), 0);
    linkDropping_.assign(network.linkCount(), 0);
    touched_.reserve(network.linkCount());
  }

  std::size_t sessionCount() const noexcept { return senders_.size(); }

  /// The session's next packet in its own stream (time order).
  Packet nextPacket(std::size_t sessionIdx) {
    return senders_[sessionIdx].next();
  }

  /// End of the session's lifetime. Packets at or past it are discarded
  /// by processPacket, and since each sender's packet times are
  /// nondecreasing, a session whose pending packet reached stopTime can
  /// be dropped from the merge entirely without changing any trajectory.
  double stopTime(std::size_t sessionIdx) const noexcept {
    return sessionConfigs_[sessionIdx].stopTime;
  }

  /// Runs one merged packet through capacity enforcement, loss, delivery
  /// accounting, and the receivers' protocol state machines.
  void processPacket(std::size_t sessionIdx, const Packet& pkt) {
    // Outside the session's lifetime the sender is silent.
    if (pkt.time < sessionConfigs_[sessionIdx].startTime ||
        pkt.time >= sessionConfigs_[sessionIdx].stopTime) {
      return;
    }
    const bool measuring = pkt.time >= config_.warmup;

    const auto& sess = network_.session(sessionIdx);
    auto& rcvrs = receivers_[sessionIdx];

    // Subscribers and the union of links leading to them.
    touched_.clear();
    bool anySubscribed = false;
    for (std::size_t k = 0; k < rcvrs.size(); ++k) {
      if (measuring) {
        levelIntegral_[sessionIdx][k] +=
            static_cast<double>(rcvrs[k].level());
        ++levelSamples_[sessionIdx][k];
      }
      if (rcvrs[k].level() < pkt.layer) continue;
      anySubscribed = true;
      for (graph::LinkId l : sess.receivers[k].dataPath) {
        if (!linkTouched_[l.value]) {
          linkTouched_[l.value] = 1;
          touched_.push_back(l.value);
        }
      }
    }
    if (!anySubscribed) return;

    // Capacity enforcement (and optional exogenous loss) per touched
    // link. The loss coin is drawn only for packets the bucket admitted,
    // so the loss RNG stream advances identically in both drivers.
    for (std::uint32_t j : touched_) {
      if (measuring) ++linkOffered_[j];
      bool forwarded = buckets_[j].admit(pkt.time);
      if (forwarded && !linkLoss_.empty() && linkLoss_[j] != nullptr) {
        forwarded = !linkLoss_[j]->lose(lossRng_[j]);
      }
      if (forwarded) {
        if (measuring) {
          ++linkForwarded_[j];
          ++sessionForwarded_[sessionIdx][j];
        }
        linkDropping_[j] = 0;
      } else {
        if (measuring) ++linkDropped_[j];
        linkDropping_[j] = 1;
      }
    }

    // Delivery / congestion per subscriber.
    for (std::size_t k = 0; k < rcvrs.size(); ++k) {
      if (rcvrs[k].level() < pkt.layer) continue;
      bool lost = false;
      for (graph::LinkId l : sess.receivers[k].dataPath) {
        if (linkDropping_[l.value]) {
          lost = true;
          break;
        }
      }
      if (!lost) {
        if (measuring) ++delivered_[sessionIdx][k];
        if (nBins_ > 0) {
          const auto bin = std::min(
              nBins_ - 1, static_cast<std::size_t>(
                              pkt.time / config_.rateBinWidth));
          ++binDelivered_[sessionIdx][k][bin];
        }
      }
      rcvrs[k].onPacket(lost, pkt.syncLevel, receiverRng_[sessionIdx][k]);
    }

    for (std::uint32_t j : touched_) {
      linkTouched_[j] = 0;
      linkDropping_[j] = 0;
    }
  }

  /// Converts the accumulated counts into the measured-rate result.
  ClosedLoopResult finalize() {
    ClosedLoopResult result;
    const std::size_t nSessions = sessionCount();
    const double window = config_.duration - config_.warmup;
    result.measuredRate.resize(nSessions);
    result.meanLevel.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      const std::size_t nr = network_.session(i).receivers.size();
      result.measuredRate[i].resize(nr);
      result.meanLevel[i].resize(nr);
      for (std::size_t k = 0; k < nr; ++k) {
        result.measuredRate[i][k] =
            static_cast<double>(delivered_[i][k]) / window;
        result.meanLevel[i][k] =
            levelSamples_[i][k] > 0
                ? levelIntegral_[i][k] /
                      static_cast<double>(levelSamples_[i][k])
                : static_cast<double>(sessionConfigs_[i].initialLevel);
      }
    }
    if (nBins_ > 0) {
      result.binRates.resize(nSessions);
      for (std::size_t i = 0; i < nSessions; ++i) {
        const std::size_t nr = network_.session(i).receivers.size();
        result.binRates[i].resize(nr);
        for (std::size_t k = 0; k < nr; ++k) {
          result.binRates[i][k].resize(nBins_);
          for (std::size_t b = 0; b < nBins_; ++b) {
            result.binRates[i][k][b] =
                static_cast<double>(binDelivered_[i][k][b]) /
                config_.rateBinWidth;
          }
        }
      }
    }
    result.linkThroughput.resize(network_.linkCount());
    result.linkDropRate.resize(network_.linkCount());
    result.sessionLinkRate.assign(
        nSessions, std::vector<double>(network_.linkCount(), 0.0));
    for (std::uint32_t j = 0; j < network_.linkCount(); ++j) {
      result.linkThroughput[j] =
          static_cast<double>(linkForwarded_[j]) / window;
      result.linkDropRate[j] =
          linkOffered_[j] > 0 ? static_cast<double>(linkDropped_[j]) /
                                    static_cast<double>(linkOffered_[j])
                              : 0.0;
      for (std::size_t i = 0; i < nSessions; ++i) {
        result.sessionLinkRate[i][j] =
            static_cast<double>(sessionForwarded_[i][j]) / window;
      }
    }
    if (config_.computeFairEpochs) {
      result.fairEpochs =
          buildFairEpochs(network_, sessionConfigs_, config_.duration,
                          config_.solverThreads);
    }
    return result;
  }

 private:
  const net::Network& network_;
  const ClosedLoopConfig& config_;
  std::vector<ClosedLoopSessionConfig> sessionConfigs_;
  std::vector<LayeredSender> senders_;
  std::vector<std::vector<LayeredReceiver>> receivers_;
  std::vector<std::vector<util::Rng>> receiverRng_;
  std::vector<TokenBucket> buckets_;
  std::vector<std::unique_ptr<LossModel>> linkLoss_;  // empty = none
  std::vector<util::Rng> lossRng_;
  std::vector<std::vector<std::uint64_t>> delivered_;
  std::vector<std::vector<double>> levelIntegral_;
  std::vector<std::vector<std::uint64_t>> levelSamples_;
  std::vector<std::uint64_t> linkForwarded_;
  std::vector<std::uint64_t> linkOffered_;
  std::vector<std::uint64_t> linkDropped_;
  std::vector<std::vector<std::uint64_t>> sessionForwarded_;
  std::size_t nBins_ = 0;
  std::vector<std::vector<std::vector<std::uint64_t>>> binDelivered_;
  std::vector<char> linkTouched_;
  std::vector<char> linkDropping_;
  std::vector<std::uint32_t> touched_;
};

}  // namespace

ClosedLoopResult runClosedLoopSimulation(const net::Network& network,
                                         const ClosedLoopConfig& config) {
  SimCore core(network, config);
  const std::size_t nSessions = core.sessionCount();

  // Event-driven merge: session i's earliest unprocessed packet lives in
  // pending[i]; the queue orders the sessions by that packet's time
  // (payload = session index). Advancing the simulation is pop + push:
  // O(log sessions) per packet. The queue holds exactly one event per
  // session, so after the seeding batch no event-queue allocation occurs.
  std::vector<Packet> pending;
  pending.reserve(nSessions);
  EventQueue queue;
  queue.reserve(nSessions + 1);
  std::vector<EventQueue::Pending> seed;
  seed.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
    seed.push_back(EventQueue::Pending{pending[i].time, i});
  }
  queue.scheduleAt(seed);

  while (const auto e = queue.pop()) {
    // The popped event is the global minimum: once it passes the horizon,
    // every pending packet has.
    if (e->time > config.duration) break;
    const auto i = static_cast<std::size_t>(e->payload);
    const Packet pkt = pending[i];
    pending[i] = core.nextPacket(i);
    // Departed sessions leave the merge: every later packet of i would
    // be discarded anyway, so not rescheduling is trajectory-identical
    // and stops dead sessions from dominating heap traffic under churn.
    if (pending[i].time < core.stopTime(i)) {
      queue.schedule(pending[i].time, e->payload);
    }
    core.processPacket(i, pkt);
  }
  return core.finalize();
}

ClosedLoopResult runClosedLoopSimulationReference(
    const net::Network& network, const ClosedLoopConfig& config) {
  SimCore core(network, config);
  const std::size_t nSessions = core.sessionCount();

  // Linear-scan merge (one lookahead packet per sender, earliest first;
  // tie-break: lower session index).
  std::vector<Packet> pending;
  pending.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
  }
  while (true) {
    std::size_t sessionIdx = 0;
    for (std::size_t i = 1; i < nSessions; ++i) {
      if (pending[i].time < pending[sessionIdx].time) sessionIdx = i;
    }
    const Packet pkt = pending[sessionIdx];
    if (pkt.time > config.duration) break;
    pending[sessionIdx] = core.nextPacket(sessionIdx);
    core.processPacket(sessionIdx, pkt);
  }
  return core.finalize();
}

double fairnessGap(const net::Network& network,
                   const ClosedLoopResult& result,
                   const fairness::Allocation& reference, double floor) {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto ref : network.receiverRefs()) {
    const double fair = reference.rate(ref);
    const double measured = result.measuredRate[ref.session][ref.receiver];
    total += std::fabs(measured - fair) / std::max(fair, floor);
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace mcfair::sim
