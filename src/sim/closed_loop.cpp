#include "sim/closed_loop.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <utility>

#include "fairness/maxmin.hpp"
#include "sim/event_queue.hpp"
#include "sim/partition.hpp"
#include "sim/sender.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mcfair::sim {

namespace {

// Continuous-refill token bucket enforcing a link's capacity.
class TokenBucket {
 public:
  TokenBucket(double rate, double depth)
      : rate_(rate), depth_(depth), tokens_(depth) {}

  /// Consumes one token at time `now`; false = drop.
  bool admit(double now) {
    tokens_ = std::min(depth_, tokens_ + rate_ * (now - lastRefill_));
    lastRefill_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  double rate() const noexcept { return rate_; }
  double depth() const noexcept { return depth_; }

  /// Token level at `now` without consuming — the exact value admit()
  /// would observe. The fluid engine's no-drop certificate starts from
  /// this state.
  double tokensAt(double now) const noexcept {
    return std::min(depth_, tokens_ + rate_ * (now - lastRefill_));
  }

  /// Reconfigures the bucket in place at a fault boundary: the current
  /// token level is materialized at `now` and clamped into the new
  /// depth, then the rate and depth switch over. A dead link (rate 0)
  /// keeps no residual tokens — it admits nothing until repaired, and a
  /// repair refills from empty at the restored rate.
  void reconfigure(double rate, double depth, double now) {
    tokens_ = std::min(depth, tokensAt(now));
    if (rate == 0.0) tokens_ = 0.0;
    rate_ = rate;
    depth_ = depth;
    lastRefill_ = now;
  }

  /// Pins the exact post-admit state of an admit() that found the
  /// bucket full: exactly `depth` tokens before the packet, depth - 1
  /// after. The fluid hand-back's windowed replay enters exact tracking
  /// through this (see SimCore::reconstructBuckets).
  void resyncFullAdmit(double now) {
    tokens_ = depth_ - 1.0;
    lastRefill_ = now;
  }

  double tokens() const noexcept { return tokens_; }
  double lastRefill() const noexcept { return lastRefill_; }

 private:
  double rate_;
  double depth_;
  double tokens_;
  double lastRefill_ = 0.0;
};

// The piecewise-constant fair reference: between consecutive session
// start/stop boundaries AND fault events the live session set and the
// effective link capacities are both constant, so one max-min solve per
// epoch suffices. A single MaxMinSolver is reused across the epochs,
// which is exactly the churn workload its incremental workspace is
// built for — and the one worker pool it owns (when solverThreads
// enables the parallel sweeps) rides along for every epoch.
//
// Fault semantics: an epoch's link capacities are base * factor of the
// last fault event at or before the epoch's start. A receiver whose
// data-path crosses a dead link (factor 0) is severed — it is excluded
// from the solve and reported at fair rate 0.0, with fairRate keeping
// the session's full receiver shape; a session with no surviving
// receiver contributes nothing to the solve. Dead links enter the epoch
// network at base capacity: no surviving data-path crosses them, so the
// value never constrains the filling.
std::vector<FairEpoch> buildFairEpochs(
    const net::Network& network,
    const std::vector<ClosedLoopSessionConfig>& sessionConfigs,
    const ClosedLoopConfig& config) {
  const double duration = config.duration;
  net::FaultSchedule faults = config.faults;
  faults.normalize(network.linkCount());

  std::vector<double> bounds;
  bounds.push_back(0.0);
  bounds.push_back(duration);
  for (const auto& sc : sessionConfigs) {
    if (sc.startTime > 0.0 && sc.startTime < duration) {
      bounds.push_back(sc.startTime);
    }
    if (sc.stopTime > 0.0 && sc.stopTime < duration) {
      bounds.push_back(sc.stopTime);
    }
  }
  for (const net::FaultEvent& ev : faults.events) {
    if (ev.time > 0.0 && ev.time < duration) bounds.push_back(ev.time);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  fairness::MaxMinOptions solverOptions;
  solverOptions.threads = config.solverThreads;
  solverOptions.validate = config.validate;
  fairness::MaxMinSolver solver(solverOptions);
  std::vector<double> factor(network.linkCount(), 1.0);
  std::size_t nextFault = 0;
  std::vector<FairEpoch> epochs;
  epochs.reserve(bounds.size() - 1);
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    FairEpoch epoch;
    epoch.begin = bounds[b];
    epoch.end = bounds[b + 1];
    while (nextFault < faults.events.size() &&
           faults.events[nextFault].time <= epoch.begin) {
      const net::FaultEvent& ev = faults.events[nextFault++];
      factor[ev.link.value] = ev.appliedFactor();
    }
    for (std::size_t i = 0; i < network.sessionCount(); ++i) {
      if (sessionConfigs[i].startTime <= epoch.begin &&
          sessionConfigs[i].stopTime >= epoch.end) {
        epoch.sessions.push_back(i);
      }
    }
    if (!epoch.sessions.empty()) {
      net::Network live;
      for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
        const double c = network.capacity(graph::LinkId{j});
        live.addLink(factor[j] > 0.0 ? c * factor[j] : c);
      }
      epoch.fairRate.reserve(epoch.sessions.size());
      // (epoch slot, surviving original receiver indices) of the
      // sessions that made it into the solve, in live-network order.
      std::vector<std::pair<std::size_t, std::vector<std::size_t>>> solved;
      for (std::size_t s = 0; s < epoch.sessions.size(); ++s) {
        const net::Session& orig = network.session(epoch.sessions[s]);
        net::Session filtered = orig;
        filtered.receivers.clear();
        std::vector<std::size_t> surviving;
        for (std::size_t k = 0; k < orig.receivers.size(); ++k) {
          bool severed = false;
          for (const graph::LinkId l : orig.receivers[k].dataPath) {
            if (factor[l.value] == 0.0) {
              severed = true;
              break;
            }
          }
          if (!severed) {
            filtered.receivers.push_back(orig.receivers[k]);
            surviving.push_back(k);
          }
        }
        epoch.fairRate.emplace_back(orig.receivers.size(), 0.0);
        if (!surviving.empty()) {
          live.addSession(std::move(filtered));
          solved.emplace_back(s, std::move(surviving));
        }
      }
      if (!solved.empty()) {
        const fairness::Allocation& a = solver.solveAllocation(live);
        for (std::size_t li = 0; li < solved.size(); ++li) {
          const auto rates = a.sessionRates(li);
          const auto& [s, surviving] = solved[li];
          for (std::size_t p = 0; p < surviving.size(); ++p) {
            epoch.fairRate[s][surviving[p]] = rates[p];
          }
        }
      }
    }
    epochs.push_back(std::move(epoch));
  }
  return epochs;
}

// The largest emission index n >= 0 whose time satisfies the boundary
// (time <= x, or strictly < x when `strict`); n = 0 means no emission
// qualifies — packets are numbered from 1. The floating-point estimate
// only seeds the search; the verdict for every boundary index comes from
// evaluating the sender's exact emission-time expression, which is what
// makes analytic interval counts bit-identical to per-packet execution.
std::uint64_t lastEmissionAt(double phase, double period, double x,
                             bool strict) noexcept {
  const double est = (x - phase) / period;
  std::uint64_t n =
      est <= 0.0 ? 0
                 : (est >= 9.0e15 ? static_cast<std::uint64_t>(9.0e15)
                                  : static_cast<std::uint64_t>(est));
  const auto within = [&](std::uint64_t i) noexcept {
    const double t = layerEmissionTime(phase, period, i);
    return strict ? t < x : t <= x;
  };
  while (n > 0 && !within(n)) --n;
  while (within(n + 1)) ++n;
  return n;
}

std::uint64_t lastEmissionAtMost(double phase, double period,
                                 double x) noexcept {
  return lastEmissionAt(phase, period, x, /*strict=*/false);
}

// Strict variant: the session-lifetime predicate (pkt.time < stopTime)
// and the complement of the start/warmup predicates (pkt.time >= bound)
// both reduce to it.
std::uint64_t lastEmissionBefore(double phase, double period,
                                 double x) noexcept {
  return lastEmissionAt(phase, period, x, /*strict=*/true);
}

class SpecEngine;  // intra-component speculative engine (befriended below)

// Everything the drivers share: validation, protocol state machines,
// token buckets, optional exogenous loss models, and the measurement
// accumulators — all in flat structure-of-arrays layout (receivers,
// RNG streams, and counters indexed by the network's flat receiver
// numbering; per-session views are [recvBegin_[i], recvBegin_[i+1])).
// The drivers differ only in how they merge the senders' streams into
// time order; each merged packet is handed to processPacket(), so
// trajectories are identical whenever the merge orders agree (they do —
// packet times are distinct across sessions almost surely because every
// layer stream carries a random phase offset, and within a session the
// sender orders its own layers).
//
// After construction, processPacket() performs no heap allocation: all
// scratch (touched-link marks, the touched list at its high-water mark)
// is preallocated here. The fluid fast-forward path allocates its
// certification scratch once on first use and nothing thereafter.
class SimCore {
 public:
  SimCore(const net::Network& network, const ClosedLoopConfig& config)
      : network_(network), config_(config) {
    MCFAIR_REQUIRE(network.sessionCount() >= 1, "need at least one session");
    MCFAIR_REQUIRE(config.sessions.empty() ||
                       config.sessions.size() == network.sessionCount(),
                   "sessions config must be empty or one entry per session");
    MCFAIR_REQUIRE(config.duration > 0.0 && config.warmup >= 0.0 &&
                       config.warmup < config.duration,
                   "need 0 <= warmup < duration");
    MCFAIR_REQUIRE(config.tokenBurst > 0.0, "tokenBurst must be positive");

    const std::size_t nSessions = network.sessionCount();
    sessionConfigs_ = config.sessions;
    if (sessionConfigs_.empty()) sessionConfigs_.resize(nSessions);

    util::Rng root(config.seed);

    // Flat receiver numbering shared with the network's own index.
    recvBegin_.resize(nSessions + 1);
    for (std::size_t i = 0; i <= nSessions; ++i) {
      recvBegin_[i] = network.receiverOffset(i);
    }
    const std::size_t nReceivers = network.receiverCount();

    // One sender and one set of protocol receivers per session. The
    // split() order (phase stream first, then one receiver stream per
    // receiver in session order) is part of the reproducibility contract:
    // equal seeds replay equal experiments across library versions.
    receivers_.reserve(nReceivers);
    receiverRng_.reserve(nReceivers);
    senders_.reserve(nSessions);
    nonAbsorbing_.assign(nSessions, 0);
    detached_.assign(nSessions, 0);
    util::Rng phaseRng = root.split();
    for (std::size_t i = 0; i < nSessions; ++i) {
      const auto& sc = sessionConfigs_[i];
      MCFAIR_REQUIRE(sc.layers >= 1, "sessions need at least one layer");
      MCFAIR_REQUIRE(sc.startTime >= 0.0 && sc.startTime < sc.stopTime,
                     "need 0 <= startTime < stopTime");
      senders_.emplace_back(layering::LayerScheme::exponential(sc.layers),
                            &phaseRng);
      const std::size_t nr = network.session(i).receivers.size();
      for (std::size_t k = 0; k < nr; ++k) {
        receivers_.emplace_back(sc.protocol, sc.layers, sc.initialLevel);
        receiverRng_.push_back(root.split());
      }
      if (sc.initialLevel != sc.layers) {
        nonAbsorbing_[i] = static_cast<std::uint32_t>(nr);
        nonAbsorbingLive_ += nr;
      }
    }

    buckets_.reserve(network.linkCount());
    for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
      const double c = network.capacity(graph::LinkId{j});
      buckets_.emplace_back(c, std::max(1.0, c * config.tokenBurst));
    }

    // Exogenous loss plumbing. The per-link RNG streams are split after
    // all protocol streams so lossless configurations replay the exact
    // RNG sequences of earlier library versions; splitLossStreams pins
    // the stream layout itself (one split per link, in link order), so
    // serial runs are bit-unchanged and each link's draw sequence is
    // independent of how packets on other links interleave — the
    // property the component-parallel engine relies on.
    if (config.linkLoss) {
      linkLoss_.reserve(network.linkCount());
      for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
        linkLoss_.push_back(config.linkLoss(graph::LinkId{j}));
      }
      lossRng_ = splitLossStreams(root, network.linkCount());
    }

    // Measurement accumulators (flat).
    delivered_.assign(nReceivers, 0);
    levelIntegral_.assign(nReceivers, 0.0);
    levelSamples_.assign(nReceivers, 0);
    linkForwarded_.assign(network.linkCount(), 0);
    linkOffered_.assign(network.linkCount(), 0);
    linkDropped_.assign(network.linkCount(), 0);
    sessionForwarded_.assign(nSessions * network.linkCount(), 0);

    // Optional per-bin delivery timeline.
    nBins_ = config.rateBinWidth > 0.0
                 ? static_cast<std::size_t>(
                       std::ceil(config.duration / config.rateBinWidth))
                 : 0;
    if (nBins_ > 0) binDelivered_.assign(nReceivers * nBins_, 0);

    // Scratch marks, reused per packet. The touched list can hold at most
    // one entry per link.
    linkTouched_.assign(network.linkCount(), 0);
    linkDropping_.assign(network.linkCount(), 0);
    touched_.reserve(network.linkCount());

    // Fault schedule: validated and time-sorted once; the drivers apply
    // each event strictly before any packet at or after its time.
    faults_ = config.faults;
    faults_.normalize(network.linkCount());
    baseCapacity_.reserve(network.linkCount());
    for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
      baseCapacity_.push_back(network.capacity(graph::LinkId{j}));
    }
    // Each fault can split off at most one more fluid interval.
    fluidIntervals_.reserve(faults_.events.size() + 1);

    const bool validate = config.validate.resolve();
    validateConservation_ = validate && config.validate.linkConservation;
    validateBucketReplay_ = validate && config.validate.bucketReplay;

    fluidBackoff_ = std::max(1.0, config.tokenBurst);
  }

  /// Time of the next unapplied fault event; +infinity once exhausted.
  double nextFaultTime() const noexcept {
    return nextFault_ < faults_.events.size()
               ? faults_.events[nextFault_].time
               : std::numeric_limits<double>::infinity();
  }

  /// Applies the next fault event: the link's token bucket is
  /// reconfigured in place at the event time — rate and depth follow
  /// the faulted capacity (base * factor), a dead link admits nothing —
  /// so every packet at or after the event sees the new capacity.
  /// The reconfiguration depends only on the event and the bucket's own
  /// state, so drivers that agree on packet order stay bit-identical
  /// through it. Allocation-free.
  void applyNextFault() { applyFaultEvent(faults_.events[nextFault_++]); }

  /// Applies one fault event directly (the component-parallel engine
  /// feeds each lane its own sub-schedule, so it bypasses the global
  /// nextFault_ cursor). In partitioned mode the conservation check is
  /// scoped to the faulted link: the full scan would read accumulators
  /// owned by concurrently-executing lanes.
  void applyFaultEvent(const net::FaultEvent& ev) {
    const double cap = baseCapacity_[ev.link.value] * ev.appliedFactor();
    buckets_[ev.link.value].reconfigure(
        cap, std::max(1.0, cap * config_.tokenBurst), ev.time);
    if (validateConservation_) {
      if (partitioned_) {
        checkLinkInvariant(ev.link.value, "fault");
      } else {
        checkInvariants("fault");
      }
    }
  }

  /// The full fault schedule, normalized (time, link, kind) — the
  /// parallel engine partitions it into per-component sub-schedules.
  std::span<const net::FaultEvent> faultEvents() const noexcept {
    return faults_.events;
  }

  /// Switches the core into component-parallel mode: global counters
  /// whose updates would cross component boundaries (the fluid engine's
  /// nonAbsorbingLive_ gate) are frozen, and fault-time conservation
  /// checks narrow to the faulted link. The fluid mode is never armed in
  /// this mode, so the frozen counter is never read.
  void enablePartitionedLanes() noexcept { partitioned_ = true; }

  std::size_t sessionCount() const noexcept { return senders_.size(); }

  /// The session's next packet in its own stream (time order).
  Packet nextPacket(std::size_t sessionIdx) {
    return senders_[sessionIdx].next();
  }

  /// End of the session's lifetime. Packets at or past it are discarded
  /// by processPacket, and since each sender's packet times are
  /// nondecreasing, a session whose pending packet reached stopTime can
  /// be dropped from the merge entirely without changing any trajectory.
  double stopTime(std::size_t sessionIdx) const noexcept {
    return sessionConfigs_[sessionIdx].stopTime;
  }

  /// The merge dropped this session (its pending packet reached
  /// stopTime): none of its packets will ever be processed again, so its
  /// receivers — whatever their level — can no longer change state and
  /// stop counting against the fluid engine's absorbing requirement.
  void onSessionDetached(std::size_t sessionIdx) {
    if (!detached_[sessionIdx]) {
      detached_[sessionIdx] = 1;
      if (!partitioned_) nonAbsorbingLive_ -= nonAbsorbing_[sessionIdx];
    }
  }

  /// Runs one merged packet through capacity enforcement, loss, delivery
  /// accounting, and the receivers' protocol state machines.
  void processPacket(std::size_t sessionIdx, const Packet& pkt) {
    processPacketInto(sessionIdx, pkt, touched_);
  }

  /// processPacket with a caller-owned touched-link scratch list: the
  /// component-parallel lanes each bring their own so concurrent lanes
  /// never share the scratch. Every other mutation is indexed by the
  /// packet's own session, receivers, or links — disjoint across
  /// link-set components by construction (see sim/partition.hpp) —
  /// except the fluid engine's nonAbsorbingLive_ gate, which partitioned
  /// mode freezes (the fluid mode is never armed there).
  void processPacketInto(std::size_t sessionIdx, const Packet& pkt,
                         std::vector<std::uint32_t>& touched) {
    const auto& sc = sessionConfigs_[sessionIdx];
    // Outside the session's lifetime the sender is silent.
    if (pkt.time < sc.startTime || pkt.time >= sc.stopTime) return;
    const bool measuring = pkt.time >= config_.warmup;

    const auto& sess = network_.session(sessionIdx);
    const std::size_t rb = recvBegin_[sessionIdx];
    const std::size_t re = recvBegin_[sessionIdx + 1];

    // Subscribers and the union of links leading to them.
    touched.clear();
    bool anySubscribed = false;
    for (std::size_t r = rb; r < re; ++r) {
      const std::size_t lvl = receivers_[r].level();
      if (measuring) {
        levelIntegral_[r] += static_cast<double>(lvl);
        ++levelSamples_[r];
      }
      if (lvl < pkt.layer) continue;
      anySubscribed = true;
      for (graph::LinkId l : sess.receivers[r - rb].dataPath) {
        if (!linkTouched_[l.value]) {
          linkTouched_[l.value] = 1;
          touched.push_back(l.value);
        }
      }
    }
    if (!anySubscribed) return;

    // Capacity enforcement (and optional exogenous loss) per touched
    // link. The loss coin is drawn only for packets the bucket admitted,
    // so the loss RNG stream advances identically in all drivers.
    for (std::uint32_t j : touched) {
      if (measuring) ++linkOffered_[j];
      bool forwarded = buckets_[j].admit(pkt.time);
      if (forwarded && !linkLoss_.empty() && linkLoss_[j] != nullptr) {
        forwarded = !linkLoss_[j]->lose(lossRng_[j]);
      }
      if (forwarded) {
        if (measuring) {
          ++linkForwarded_[j];
          ++sessionForwarded_[sessionIdx * network_.linkCount() + j];
        }
        linkDropping_[j] = 0;
      } else {
        if (measuring) ++linkDropped_[j];
        linkDropping_[j] = 1;
      }
    }

    // Delivery / congestion per subscriber.
    const std::size_t maxLevel = sc.layers;
    for (std::size_t r = rb; r < re; ++r) {
      if (receivers_[r].level() < pkt.layer) continue;
      bool lost = false;
      for (graph::LinkId l : sess.receivers[r - rb].dataPath) {
        if (linkDropping_[l.value]) {
          lost = true;
          break;
        }
      }
      if (!lost) {
        if (measuring) ++delivered_[r];
        if (nBins_ > 0) ++binDelivered_[r * nBins_ + binIndex(pkt.time)];
      }
      const bool wasMax = receivers_[r].level() == maxLevel;
      receivers_[r].onPacket(lost, pkt.syncLevel, receiverRng_[r]);
      const bool isMax = receivers_[r].level() == maxLevel;
      if (wasMax != isMax) {
        // A receiver is "absorbing" exactly at its top level: no protocol
        // can join past it, the Uncoordinated join coin is never drawn,
        // and Coordinated sync signals (capped at layers - 1) cannot
        // reach it — so clean packets leave its state untouched, which
        // is what the fluid certificate requires.
        if (isMax) {
          --nonAbsorbing_[sessionIdx];
          if (!partitioned_ && !detached_[sessionIdx]) --nonAbsorbingLive_;
        } else {
          ++nonAbsorbing_[sessionIdx];
          if (!partitioned_ && !detached_[sessionIdx]) ++nonAbsorbingLive_;
        }
      }
    }

    for (std::uint32_t j : touched) {
      linkTouched_[j] = 0;
      linkDropping_[j] = 0;
    }
  }

  // ---- fluid fast-forward mode ------------------------------------------

  /// Arms the fluid mode (the fluid driver calls this once). Exogenous
  /// loss disarms it permanently: every admitted packet owes its per-link
  /// RNG draw, so skipping packets would desynchronize the loss streams.
  void armFluid() { fluidArmed_ = linkLoss_.empty(); }

  /// Cheap per-event gate: is a fast-forward attempt worth the scan now?
  bool fluidWanted(double now) const noexcept {
    return fluidArmed_ && nonAbsorbingLive_ == 0 &&
           now >= nextFluidAttempt_;
  }

  /// Attempts to advance the run analytically from `tSwitch` (the time
  /// of the earliest unprocessed packet; `pending` holds each session's
  /// generated-but-unprocessed lookahead packet) to `horizon` — the end
  /// of the run, or the next fault event, whichever comes first. On
  /// success every accumulator is advanced to the horizon in closed
  /// form and true is returned. When the horizon is the end of the run
  /// the caller just stops executing packets; when it is a fault
  /// boundary the fast-forward is PARTIAL: packets strictly before the
  /// horizon are accounted analytically, then exact per-packet state is
  /// reconstructed — token buckets via replay (reconstructBuckets),
  /// senders via LayeredSender::resync, the merge queue reseeded from
  /// the resumed lookahead packets — and execution hands back to the
  /// per-packet path, which applies the fault and continues. On failure
  /// nothing changes and a retry is scheduled with exponential backoff
  /// (token buckets refill over time, so a certificate that fails now
  /// can hold later).
  ///
  /// The certificate, per link, over every interval between session
  /// start/stop boundaries in [tSwitch, duration]:
  ///   (1) every receiver that can still process a packet sits at its top
  ///       layer (absorbing — checked via the counters), so subscription
  ///       sets and per-packet behavior are constant;
  ///   (2) aggregate arrival rate R_j <= capacity c_j; and
  ///   (3) a token lower bound L_j >= S_j + margin at the interval start,
  ///       where S_j counts the periodic streams crossing the link.
  /// (2)+(3) certify no token-bucket drop: a set of S periodic streams of
  /// total rate R presents at most S + R*w arrivals in any window w, so
  /// unclamped tokens stay >= L - S + (c - R)*w >= margin >= 1 at every
  /// admit. Across an interval of width W the bound advances as
  /// L' = min(depth, L + (c - R)*W) - S (clamping only raises tokens;
  /// if the clamp binds, tokens restart from depth). The margin of 2
  /// tokens dominates any accumulated rounding drift of the bucket's
  /// incremental refill arithmetic.
  bool tryFluidFastForward(double tSwitch, std::vector<Packet>& pending,
                           EventQueue& queue, double horizon) {
    const std::size_t nSessions = sessionCount();
    const bool partial = horizon < config_.duration;
    // (1) absorbing — the live counter is the fast gate; the per-session
    // scan is authoritative (the counter can lag for sessions that
    // stopped but whose final pending pop has not happened yet).
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (!detached_[i] && sessionConfigs_[i].stopTime > tSwitch &&
          nonAbsorbing_[i] > 0) {
        return false;
      }
    }
    ensureFluidScratch();

    // Lifetime boundaries inside [tSwitch, horizon]: the only remaining
    // state changes. Measurement boundaries (warmup, bins) do not alter
    // dynamics and are handled inside the closed-form accounting.
    events_.clear();
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (detached_[i]) continue;  // contributes no further packets
      const double start = std::max(sessionConfigs_[i].startTime, tSwitch);
      const double stop = sessionConfigs_[i].stopTime;
      if (start > horizon || stop <= start) continue;
      events_.push_back(LifeEvent{start, static_cast<std::uint32_t>(i), +1});
      if (stop <= horizon) {
        events_.push_back(
            LifeEvent{stop, static_cast<std::uint32_t>(i), -1});
      }
    }
    std::sort(events_.begin(), events_.end(),
              [](const LifeEvent& a, const LifeEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.delta != b.delta) return a.delta < b.delta;
                return a.session < b.session;
              });

    const std::size_t nLinks = network_.linkCount();
    for (std::size_t j = 0; j < nLinks; ++j) {
      linkS_[j] = 0.0;
      linkR_[j] = 0.0;
      linkLast_[j] = tSwitch;
      linkLB_[j] = buckets_[j].tokensAt(tSwitch);
    }

    bool feasible = true;
    std::size_t idx = 0;
    while (feasible && idx < events_.size()) {
      const double t = events_[idx].time;
      dirtyLinks_.clear();
      while (idx < events_.size() && events_[idx].time == t) {
        const LifeEvent& ev = events_[idx];
        const double dS = static_cast<double>(
            sessionConfigs_[ev.session].layers);
        const double dR = sessAggRate_[ev.session];
        const std::size_t lb = sessLinkBegin_[ev.session];
        const std::size_t le = sessLinkBegin_[ev.session + 1];
        for (std::size_t s = lb; s < le; ++s) {
          const std::uint32_t j = sessLink_[s];
          if (!linkDirtyMark_[j]) {
            linkDirtyMark_[j] = 1;
            dirtyLinks_.push_back(j);
            // Advance the token lower bound across the segment that
            // ends here, under the segment's constant (S, R).
            const double w = t - linkLast_[j];
            if (w > 0.0) {
              linkLB_[j] = std::min(buckets_[j].depth(),
                                    linkLB_[j] +
                                        (buckets_[j].rate() - linkR_[j]) *
                                            w) -
                           linkS_[j];
              linkLast_[j] = t;
            }
          }
          linkS_[j] += ev.delta * dS;
          linkR_[j] += ev.delta * dR;
        }
        ++idx;
      }
      for (const std::uint32_t j : dirtyLinks_) {
        linkDirtyMark_[j] = 0;
        if (linkS_[j] > 0.0 &&
            (linkR_[j] > buckets_[j].rate() ||
             linkLB_[j] < linkS_[j] + kFluidTokenMargin)) {
          feasible = false;  // finish clearing marks before bailing
        }
      }
    }
    if (!feasible) {
      nextFluidAttempt_ = tSwitch + fluidBackoff_;
      fluidBackoff_ *= 2.0;
      return false;
    }

    // Certified: advance every stream analytically. Per (session, layer)
    // the unprocessed packets are emissions nDone+1, nDone+2, ... at the
    // sender's exact closed-form times; lifetime/warmup/duration clip to
    // an index range, and every accumulator update is a count times a
    // constant (levels are pinned at the top layer, all packets are
    // delivered). All additions land on integer-valued counters far
    // below 2^53, so closed-form totals equal the per-packet sums
    // bit-for-bit.
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (detached_[i]) continue;
      const auto& sc = sessionConfigs_[i];
      const LayeredSender& snd = senders_[i];
      const std::size_t rb = recvBegin_[i];
      const std::size_t re = recvBegin_[i + 1];
      const double level = static_cast<double>(sc.layers);
      const std::size_t lb = sessLinkBegin_[i];
      const std::size_t le = sessLinkBegin_[i + 1];
      for (std::size_t k = 1; k <= sc.layers; ++k) {
        const double phase = snd.layerPhase(k);
        const double period = snd.layerPeriod(k);
        const std::uint64_t nDone =
            snd.layerEmitted(k) - (pending[i].layer == k ? 1 : 0);
        // A fault horizon is exclusive: packets AT the fault time are
        // processed after the fault by every driver, so a partial
        // fast-forward accounts strictly-before emissions only. The
        // end of the run is inclusive (the drivers process packets at
        // time == duration).
        std::uint64_t nHi = partial
                                ? lastEmissionBefore(phase, period, horizon)
                                : lastEmissionAtMost(phase, period, horizon);
        if (sc.stopTime <= horizon) {
          nHi = std::min(nHi,
                         lastEmissionBefore(phase, period, sc.stopTime));
        }
        std::uint64_t nLo = nDone + 1;
        if (sc.startTime > 0.0) {
          nLo = std::max(
              nLo, lastEmissionBefore(phase, period, sc.startTime) + 1);
        }
        if (nLo > nHi) continue;
        const std::uint64_t nMeasLo = std::max(
            nLo, lastEmissionBefore(phase, period, config_.warmup) + 1);
        const std::uint64_t meas =
            nMeasLo <= nHi ? nHi - nMeasLo + 1 : 0;
        fluidPackets_ += nHi - nLo + 1;

        if (meas > 0) {
          const double measLevel =
              level * static_cast<double>(meas);  // exact: integers < 2^53
          for (std::size_t r = rb; r < re; ++r) {
            delivered_[r] += meas;
            levelSamples_[r] += meas;
            levelIntegral_[r] += measLevel;
          }
          for (std::size_t s = lb; s < le; ++s) {
            const std::uint32_t j = sessLink_[s];
            linkOffered_[j] += meas;
            linkForwarded_[j] += meas;
            sessionForwarded_[i * nLinks + j] += meas;
          }
        }
        if (nBins_ > 0) {
          // Walk the bins the stream's index range overlaps; bin
          // membership is decided by the same binIndex() expression the
          // per-packet path evaluates.
          std::uint64_t n = nLo;
          while (n <= nHi) {
            const std::size_t b =
                binIndex(layerEmissionTime(phase, period, n));
            std::uint64_t cand = lastEmissionAtMost(
                phase, period,
                static_cast<double>(b + 1) * config_.rateBinWidth);
            cand = std::clamp<std::uint64_t>(cand, n, nHi);
            while (cand < nHi &&
                   binIndex(layerEmissionTime(phase, period, cand + 1)) <=
                       b) {
              ++cand;
            }
            while (cand > n &&
                   binIndex(layerEmissionTime(phase, period, cand)) > b) {
              --cand;
            }
            const std::uint64_t cnt = cand - n + 1;
            for (std::size_t r = rb; r < re; ++r) {
              binDelivered_[r * nBins_ + b] += cnt;
            }
            n = cand + 1;
          }
        }
      }
    }

    fluidTime_ += horizon - tSwitch;
    fluidIntervals_.push_back(FluidInterval{tSwitch, horizon});
    if (!partial) return true;

    // Hand back to per-packet execution at the fault boundary.
    // (a) Token buckets: the exact state per-packet execution would
    //     have left after the last admit before the horizon.
    reconstructBuckets(pending, tSwitch, horizon);
    // (b) Senders resume at their first emission >= horizon, sessions
    //     that ended inside the interval detach, and the merge queue is
    //     reseeded from the surviving lookahead packets. All scratch is
    //     preallocated: the hand-back allocates nothing.
    queue.clear();
    seedScratch_.clear();
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (detached_[i]) continue;
      const auto& sc = sessionConfigs_[i];
      if (sc.stopTime <= horizon) {
        // Its last packet was accounted analytically; the per-packet
        // merge would have dropped it by now.
        onSessionDetached(i);
        continue;
      }
      resyncCounts_.clear();
      for (std::size_t k = 1; k <= sc.layers; ++k) {
        resyncCounts_.push_back(lastEmissionBefore(
            senders_[i].layerPhase(k), senders_[i].layerPeriod(k), horizon));
      }
      senders_[i].resync(resyncCounts_);
      pending[i] = senders_[i].next();
      if (pending[i].time < sc.stopTime) {
        seedScratch_.push_back(EventQueue::Pending{pending[i].time, i});
      } else {
        onSessionDetached(i);
      }
    }
    queue.scheduleAt(seedScratch_);
    // The certificate can re-engage once the population settles again
    // after the fault; restart the retry clock from scratch.
    nextFluidAttempt_ = horizon;
    fluidBackoff_ = std::max(1.0, config_.tokenBurst);
    return true;
  }

  /// Rebuilds every token bucket's exact per-packet state at the
  /// hand-back horizon. During a certified interval no admit fails and
  /// same-time admits commute, so replaying a link's merged arrival
  /// sequence through admit() reproduces the per-packet engine's bucket
  /// state bit-for-bit. Two modes per link:
  ///  * windowed (the default): start a token LOWER BOUND at zero a
  ///    bounded window W = 2 * (depth + S + 2) / (rate - R) before the
  ///    horizon (S streams of aggregate rate R present at most
  ///    S + R*w arrivals in any window w, so the bound gains at least
  ///    (rate - R) * W - arrivals > depth over the window). The bound
  ///    can only clamp when the TRUE level clamps — it is a lower
  ///    bound of a value capped at depth — so the first arrival whose
  ///    bound clamps saw exactly `depth` true tokens, an exact state;
  ///    the remaining arrivals replay exactly through admit(). Cost
  ///    O(W * arrival rate) per link, independent of interval length.
  ///  * full replay from the switch point (the bucket is untouched
  ///    during a fluid interval, so its pre-switch state is exact):
  ///    the fallback when the window cannot be bounded (refill does
  ///    not exceed the arrival rate) or does not fit, and the oracle
  ///    the windowed mode is cross-checked against under
  ///    MCFAIR_VALIDATE.
  void reconstructBuckets(const std::vector<Packet>& pending,
                          double tSwitch, double horizon) {
    for (std::uint32_t j = 0; j < network_.linkCount(); ++j) {
      if (linkSessBegin_[j] == linkSessBegin_[j + 1]) continue;
      double streams = 0.0;
      double rate = 0.0;
      bool any = false;
      for (std::size_t s = linkSessBegin_[j]; s < linkSessBegin_[j + 1];
           ++s) {
        const std::size_t i = linkSess_[s];
        if (detached_[i]) continue;
        const auto& sc = sessionConfigs_[i];
        if (sc.startTime >= horizon || sc.stopTime <= tSwitch) continue;
        any = true;
        streams += static_cast<double>(sc.layers);
        rate += sessAggRate_[i];
      }
      if (!any) continue;  // no admits during the interval
      TokenBucket& bucket = buckets_[j];
      double from = tSwitch;
      bool windowed = false;
      if (bucket.rate() > rate) {
        const double w =
            2.0 * (bucket.depth() + streams + 2.0) / (bucket.rate() - rate);
        if (horizon - w > tSwitch) {
          from = horizon - w;
          windowed = true;
        }
      }
      if (windowed && validateBucketReplay_) {
        TokenBucket probe = bucket;
        const bool exact =
            replayLink(probe, j, pending, horizon, from, true);
        replayLink(bucket, j, pending, horizon, tSwitch, false);
        // `!exact` is a legitimate outcome (arrivals can cease before
        // the bound clamps, e.g. sessions stopping mid-window); only an
        // exact windowed state that DISAGREES with the oracle is a bug.
        if (exact && (probe.tokens() != bucket.tokens() ||
                      probe.lastRefill() != bucket.lastRefill())) {
          throw NumericError(
              "windowed token-bucket reconstruction diverged from the "
              "full replay on link " +
              std::to_string(j));
        }
        continue;
      }
      if (!windowed ||
          !replayLink(bucket, j, pending, horizon, from, true)) {
        replayLink(bucket, j, pending, horizon, tSwitch, false);
      }
    }
  }

  /// Replays link j's merged packet arrivals in [from, horizon) into
  /// `bucket`. Windowed mode tracks the zero-seeded token lower bound
  /// until it clamps at depth (then switches to exact admits); plain
  /// mode assumes the bucket already holds exact state at `from` and
  /// just admits. Returns whether the final state is exact. The merge
  /// runs on the preallocated stream-cursor heap; same-time arrivals
  /// may pop in any order (admits at equal times commute).
  bool replayLink(TokenBucket& bucket, std::uint32_t j,
                  const std::vector<Packet>& pending, double horizon,
                  double from, bool windowed) {
    streamHeap_.clear();
    for (std::size_t s = linkSessBegin_[j]; s < linkSessBegin_[j + 1];
         ++s) {
      const std::size_t i = linkSess_[s];
      if (detached_[i]) continue;
      const auto& sc = sessionConfigs_[i];
      const double stop = std::min(sc.stopTime, horizon);
      for (std::size_t k = 1; k <= sc.layers; ++k) {
        const double phase = senders_[i].layerPhase(k);
        const double period = senders_[i].layerPeriod(k);
        // First unprocessed emission (the pending lookahead counts as
        // unprocessed), clipped by the session start, the replay
        // start, and the horizon/stop — exactly the admits per-packet
        // execution performs in the window.
        std::uint64_t n = senders_[i].layerEmitted(k) -
                          (pending[i].layer == k ? 1 : 0) + 1;
        if (sc.startTime > 0.0) {
          n = std::max(n,
                       lastEmissionBefore(phase, period, sc.startTime) + 1);
        }
        n = std::max(n, lastEmissionBefore(phase, period, from) + 1);
        const std::uint64_t nHi = lastEmissionBefore(phase, period, stop);
        if (n > nHi) continue;
        streamHeap_.push_back(StreamCursor{
            layerEmissionTime(phase, period, n), phase, period, n, nHi});
      }
    }
    std::make_heap(streamHeap_.begin(), streamHeap_.end(), laterCursor);
    bool exact = !windowed;
    double lb = 0.0;
    double lbTime = from;
    while (!streamHeap_.empty()) {
      std::pop_heap(streamHeap_.begin(), streamHeap_.end(), laterCursor);
      StreamCursor cur = streamHeap_.back();
      streamHeap_.pop_back();
      if (exact) {
        bucket.admit(cur.time);
      } else {
        const double pre = lb + bucket.rate() * (cur.time - lbTime);
        if (pre >= bucket.depth()) {
          // The lower bound clamped, so the true pre-admit level was
          // exactly depth: pin the exact post-admit state.
          bucket.resyncFullAdmit(cur.time);
          exact = true;
        } else {
          lb = pre - 1.0;
          lbTime = cur.time;
        }
      }
      if (cur.n < cur.nHi) {
        ++cur.n;
        cur.time = layerEmissionTime(cur.phase, cur.period, cur.n);
        streamHeap_.push_back(cur);
        std::push_heap(streamHeap_.begin(), streamHeap_.end(), laterCursor);
      }
    }
    return exact;
  }

  /// Per-link accumulator conservation: every offered packet-link
  /// traversal was either forwarded or dropped. Checked after every
  /// fault and at finalize when validation is on.
  void checkInvariants(const char* where) const {
    for (std::size_t j = 0; j < linkOffered_.size(); ++j) {
      checkLinkInvariant(j, where);
    }
  }

  /// Single-link conservation check — what a partitioned lane may verify
  /// at a fault without reading other lanes' accumulators.
  void checkLinkInvariant(std::size_t j, const char* where) const {
    if (linkOffered_[j] != linkForwarded_[j] + linkDropped_[j]) {
      throw NumericError(std::string("link accumulator conservation "
                                     "violated at ") +
                         where + ": link " + std::to_string(j));
    }
  }

  /// Converts the accumulated counts into the measured-rate result.
  ClosedLoopResult finalize() {
    ClosedLoopResult result;
    const std::size_t nSessions = sessionCount();
    const double window = config_.duration - config_.warmup;
    result.measuredRate.resize(nSessions);
    result.meanLevel.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      const std::size_t rb = recvBegin_[i];
      const std::size_t nr = recvBegin_[i + 1] - rb;
      result.measuredRate[i].resize(nr);
      result.meanLevel[i].resize(nr);
      for (std::size_t k = 0; k < nr; ++k) {
        result.measuredRate[i][k] =
            static_cast<double>(delivered_[rb + k]) / window;
        result.meanLevel[i][k] =
            levelSamples_[rb + k] > 0
                ? levelIntegral_[rb + k] /
                      static_cast<double>(levelSamples_[rb + k])
                : static_cast<double>(sessionConfigs_[i].initialLevel);
      }
    }
    if (nBins_ > 0) {
      result.binRates.resize(nSessions);
      for (std::size_t i = 0; i < nSessions; ++i) {
        const std::size_t rb = recvBegin_[i];
        const std::size_t nr = recvBegin_[i + 1] - rb;
        result.binRates[i].resize(nr);
        for (std::size_t k = 0; k < nr; ++k) {
          result.binRates[i][k].resize(nBins_);
          for (std::size_t b = 0; b < nBins_; ++b) {
            result.binRates[i][k][b] =
                static_cast<double>(binDelivered_[(rb + k) * nBins_ + b]) /
                config_.rateBinWidth;
          }
        }
      }
    }
    const std::size_t nLinks = network_.linkCount();
    result.linkThroughput.resize(nLinks);
    result.linkDropRate.resize(nLinks);
    result.sessionLinkRate.assign(nSessions,
                                  std::vector<double>(nLinks, 0.0));
    for (std::size_t j = 0; j < nLinks; ++j) {
      result.linkThroughput[j] =
          static_cast<double>(linkForwarded_[j]) / window;
      result.linkDropRate[j] =
          linkOffered_[j] > 0 ? static_cast<double>(linkDropped_[j]) /
                                    static_cast<double>(linkOffered_[j])
                              : 0.0;
      for (std::size_t i = 0; i < nSessions; ++i) {
        result.sessionLinkRate[i][j] =
            static_cast<double>(sessionForwarded_[i * nLinks + j]) / window;
      }
    }
    if (config_.computeFairEpochs) {
      result.fairEpochs = buildFairEpochs(network_, sessionConfigs_, config_);
    }
    result.fluidTime = fluidTime_;
    result.fluidPackets = fluidPackets_;
    result.fluidIntervals = fluidIntervals_;
    if (validateConservation_) checkInvariants("finalize");
    return result;
  }

 private:
  // The speculative engine is an alternate driver over the same SoA
  // state: it reuses the fluid scratch CSRs and mutates the buckets,
  // receivers, and accumulators directly from its sharded stages.
  friend class SpecEngine;

  std::size_t binIndex(double time) const noexcept {
    return std::min(nBins_ - 1, static_cast<std::size_t>(
                                    time / config_.rateBinWidth));
  }

  // One-time (per SimCore) fluid scratch: each session's touched-link
  // union in CSR form (all receivers sit at the top layer when the fluid
  // mode engages, so every packet touches the whole union), aggregate
  // stream rates, and the per-link certification state.
  void ensureFluidScratch() {
    if (fluidScratchReady_) return;
    const std::size_t nSessions = sessionCount();
    const std::size_t nLinks = network_.linkCount();
    sessLinkBegin_.resize(nSessions + 1);
    sessLinkBegin_[0] = 0;
    for (std::size_t i = 0; i < nSessions; ++i) {
      const auto path = network_.sessionDataPath(i);
      for (const graph::LinkId l : path) sessLink_.push_back(l.value);
      sessLinkBegin_[i + 1] = sessLink_.size();
    }
    sessAggRate_.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      sessAggRate_[i] =
          senders_[i].scheme().cumulativeRate(sessionConfigs_[i].layers);
    }
    events_.reserve(2 * nSessions);
    linkS_.resize(nLinks);
    linkR_.resize(nLinks);
    linkLB_.resize(nLinks);
    linkLast_.resize(nLinks);
    linkDirtyMark_.assign(nLinks, 0);
    dirtyLinks_.reserve(nLinks);
    // Hand-back scratch: the transposed link -> sessions CSR (which
    // streams cross each link) and the stream-cursor merge heap sized
    // for the largest possible stream set, so fault hand-backs are
    // allocation-free.
    linkSessBegin_.assign(nLinks + 1, 0);
    for (const std::uint32_t j : sessLink_) ++linkSessBegin_[j + 1];
    for (std::size_t j = 0; j < nLinks; ++j) {
      linkSessBegin_[j + 1] += linkSessBegin_[j];
    }
    linkSess_.resize(sessLink_.size());
    {
      std::vector<std::size_t> fill(linkSessBegin_.begin(),
                                    linkSessBegin_.end() - 1);
      for (std::size_t i = 0; i < nSessions; ++i) {
        for (std::size_t s = sessLinkBegin_[i]; s < sessLinkBegin_[i + 1];
             ++s) {
          linkSess_[fill[sessLink_[s]]++] = i;
        }
      }
    }
    std::size_t totalStreams = 0;
    std::size_t maxLayers = 0;
    for (std::size_t i = 0; i < nSessions; ++i) {
      totalStreams += sessionConfigs_[i].layers;
      maxLayers = std::max(maxLayers, sessionConfigs_[i].layers);
    }
    streamHeap_.reserve(totalStreams);
    resyncCounts_.reserve(maxLayers);
    seedScratch_.reserve(nSessions);
    fluidScratchReady_ = true;
  }

  static constexpr double kFluidTokenMargin = 2.0;

  const net::Network& network_;
  const ClosedLoopConfig& config_;
  std::vector<ClosedLoopSessionConfig> sessionConfigs_;
  std::vector<LayeredSender> senders_;

  // Flat per-receiver state (network receiverOffset numbering).
  std::vector<std::size_t> recvBegin_;  // nSessions + 1
  std::vector<LayeredReceiver> receivers_;
  std::vector<util::Rng> receiverRng_;
  std::vector<std::uint64_t> delivered_;
  std::vector<double> levelIntegral_;
  std::vector<std::uint64_t> levelSamples_;
  std::vector<std::uint64_t> binDelivered_;  // recv * nBins_ + bin

  std::vector<TokenBucket> buckets_;
  std::vector<std::unique_ptr<LossModel>> linkLoss_;  // empty = none
  std::vector<util::Rng> lossRng_;
  std::vector<std::uint64_t> linkForwarded_;
  std::vector<std::uint64_t> linkOffered_;
  std::vector<std::uint64_t> linkDropped_;
  std::vector<std::uint64_t> sessionForwarded_;  // session * nLinks + link
  std::size_t nBins_ = 0;
  std::vector<char> linkTouched_;
  std::vector<char> linkDropping_;
  std::vector<std::uint32_t> touched_;

  // Absorbing-receiver tracking (fluid eligibility).
  std::vector<std::uint32_t> nonAbsorbing_;  // per session
  std::vector<char> detached_;
  std::size_t nonAbsorbingLive_ = 0;
  // Component-parallel mode (enablePartitionedLanes): freezes
  // nonAbsorbingLive_ and scopes fault-time invariant checks per link.
  bool partitioned_ = false;

  // Fault state.
  net::FaultSchedule faults_;
  std::size_t nextFault_ = 0;
  std::vector<double> baseCapacity_;
  bool validateConservation_ = false;
  bool validateBucketReplay_ = false;

  // Fluid mode state.
  bool fluidArmed_ = false;
  double nextFluidAttempt_ = 0.0;
  double fluidBackoff_ = 1.0;
  double fluidTime_ = 0.0;
  std::uint64_t fluidPackets_ = 0;
  std::vector<FluidInterval> fluidIntervals_;
  bool fluidScratchReady_ = false;
  std::vector<std::size_t> sessLinkBegin_;  // CSR into sessLink_
  std::vector<std::uint32_t> sessLink_;
  std::vector<double> sessAggRate_;
  std::vector<std::size_t> linkSessBegin_;  // transposed: link -> sessions
  std::vector<std::size_t> linkSess_;
  struct StreamCursor {
    double time;
    double phase;
    double period;
    std::uint64_t n;
    std::uint64_t nHi;
  };
  static bool laterCursor(const StreamCursor& a,
                          const StreamCursor& b) noexcept {
    return a.time > b.time;
  }
  std::vector<StreamCursor> streamHeap_;
  std::vector<std::uint64_t> resyncCounts_;
  std::vector<EventQueue::Pending> seedScratch_;
  struct LifeEvent {
    double time;
    std::uint32_t session;
    std::int32_t delta;
  };
  std::vector<LifeEvent> events_;
  std::vector<double> linkS_;     // periodic streams crossing the link
  std::vector<double> linkR_;     // their aggregate rate
  std::vector<double> linkLB_;    // token lower bound
  std::vector<double> linkLast_;  // time linkLB_ refers to
  std::vector<char> linkDirtyMark_;
  std::vector<std::uint32_t> dirtyLinks_;
};

// ---- speculative intra-component engine ---------------------------------
//
// The component-parallel engine's unit of concurrency is a component, so a
// mega-merge population — every session crossing one shared bottleneck —
// is one lane and runs serially no matter how many threads are available.
// The speculative engine parallelizes INSIDE such a component by splitting
// simulated time into epochs bounded by shared-link state-change times
// (session starts/stops, fault events, plus a uniform grid) and running
// three sharded stages per epoch against a FROZEN snapshot of each
// session's receiver subscription levels:
//
//   GEN   (session-sharded)  Each sender's epoch packets via closed-form
//                            layerEmissionTime counts — embarrassingly
//                            parallel, overlapped with the caller's serial
//                            index build and with the previous epoch's
//                            admit stage (ThreadPool::beginShards).
//   ADMIT (link-sharded)     Token-bucket admit + exogenous loss for every
//                            packet predicted to touch the link, in global
//                            packet order restricted to the link. Each
//                            worker owns a contiguous link range, so each
//                            bucket and loss RNG stream has one writer.
//   RECV  (session-sharded)  Level sampling, delivery accounting, and the
//                            protocol state machines, against the TRUE
//                            (evolving) receiver state.
//
// Bit-identity argument. The serial engines apply, per packet: level
// samples and the subscriber scan, then per touched link (the union of
// subscribed receivers' data paths) the bucket admit and loss draw, then
// per subscriber the delivery + onPacket transition. The only coupling
// between sessions is the per-link admit/loss sequence; its order is the
// global packet order restricted to the link. The engine sorts each
// epoch's packets by (time, session) — the reference merge's exact order
// (lowest session index on equal times) — and feeds each link its
// arrivals in that order, so when the PREDICTED touched set of every
// packet equals the true one, every bucket sees the serial call sequence
// and every accumulator update commutes across shards (disjoint
// ownership). The prediction is exact by construction while no receiver
// of the session changed level since the epoch's snapshot (levels are the
// only input to the touched-set computation); the RECV stage tracks this
// per session and, once a level moves, compares the true touched set of
// each subsequent packet against the prediction. Any mismatch flags the
// epoch as diverged: the engine restores the pre-epoch snapshot (buckets,
// loss-model words, loss/receiver RNG streams, receivers, every
// accumulator) and replays the epoch's packets serially through
// processPacketInto — the literal serial semantics. Epochs therefore
// commit speculative work only when it is provably bit-identical, and
// fall back to serial execution (bounded to one epoch) when it is not.
//
// Populations whose receivers cannot change level — single-layer sessions,
// the mega-merge shape — never diverge: speculationRollbacks == 0.
//
// Steady-state epochs are allocation-free: every arena, index, and
// snapshot twin is sized once at setup from closed-form per-epoch packet
// bounds (rate * width + one per stream), and the per-epoch passes are
// fills, copies, sorts, and heap-free scans into that storage.
class SpecEngine {
 public:
  SpecEngine(SimCore& core, std::size_t threads)
      : core_(core),
        network_(core.network_),
        config_(core.config_),
        threads_(std::max<std::size_t>(1, threads)),
        pool_(threads_) {
    genJob_.engine = this;
    admitJob_.engine = this;
    recvJob_.engine = this;
    setup();
  }

  void run();

  std::uint64_t epochs() const noexcept { return epochCount_; }
  std::uint64_t rollbacks() const noexcept { return rollbackCount_; }

 private:
  // One generated packet. `ord` is the generation index within (session,
  // epoch): sorting by (time, session, ord) reproduces both the
  // reference merge's cross-session order and each sender's own stream
  // order (sender times are nondecreasing, ties emitted in pop order).
  struct SpecPacket {
    double time;
    std::uint32_t session;
    std::uint32_t ord;
    std::uint32_t layer;
    std::uint32_t syncLevel;
  };

  // ThreadPool jobs must outlive beginShards..finishShards; member
  // functors give them engine lifetime.
  struct GenJob {
    SpecEngine* engine;
    void operator()(std::size_t shard) const { engine->generateShard(shard); }
  };
  struct AdmitJob {
    SpecEngine* engine;
    void operator()(std::size_t shard) const { engine->admitShard(shard); }
  };
  struct RecvJob {
    SpecEngine* engine;
    void operator()(std::size_t shard) const { engine->receiverShard(shard); }
  };

  // Auto epoch sizing targets this many packets per epoch; the knob
  // overrides the uniform division count directly.
  static constexpr double kTargetEpochPackets = 262144.0;

  void setup();
  void prepareCounts(std::size_t epoch);
  void sortArena(std::size_t which, std::size_t count);
  void refreshFrozen();
  void takeSnapshot();
  void restoreSnapshot();
  void buildEpochIndex();
  void rollbackEpoch();
  void generateShard(std::size_t shard);
  void admitShard(std::size_t shard);
  void receiverShard(std::size_t shard);

  // Contiguous weighted range cuts: bounds[k]..bounds[k+1] is shard k's
  // range, cut so each carries ~1/shards of the total weight. Empty
  // shards are fine (workers skip them).
  static void planCuts(std::span<const double> weight, std::size_t shards,
                       std::vector<std::size_t>& bounds) {
    bounds.assign(shards + 1, weight.size());
    bounds[0] = 0;
    double total = 0.0;
    for (const double w : weight) total += w;
    double acc = 0.0;
    std::size_t k = 1;
    for (std::size_t i = 0; i < weight.size(); ++i) {
      acc += weight[i];
      while (k < shards && acc >= total * static_cast<double>(k) /
                                      static_cast<double>(shards)) {
        bounds[k++] = i + 1;
      }
    }
  }

  SimCore& core_;
  const net::Network& network_;
  const ClosedLoopConfig& config_;
  std::size_t threads_;
  util::ThreadPool pool_;
  GenJob genJob_;
  AdmitJob admitJob_;
  RecvJob recvJob_;

  // Epoch boundaries: bounds_[e]..bounds_[e+1] is epoch e, lower bound
  // inclusive, upper bound exclusive except for the final epoch (which
  // includes packets at exactly `duration`, like every serial driver).
  std::vector<double> bounds_;

  // Double-buffered packet arenas: front_ holds the epoch in flight,
  // the other side is filled by the overlapped generation of the next.
  std::vector<SpecPacket> arena_[2];
  std::size_t front_ = 0;
  std::size_t frontCount_ = 0;
  std::size_t genTarget_ = 0;
  std::size_t arenaCapacity_ = 0;

  // Closed-form per-session generation counts for the epoch being
  // generated (cnt_) and their exclusive prefix (off_ = arena offsets).
  std::vector<std::uint32_t> cnt_;
  std::vector<std::size_t> off_;
  std::size_t pendingCount_ = 0;

  // Frozen subscription snapshot: per session-slot (sessLink_ position)
  // the max level over the session's receivers whose data path crosses
  // that slot's link, and per session the max receiver level. A packet
  // of layer L is predicted to touch slot s iff frozenMaxSlot_[s] >= L.
  std::vector<std::uint32_t> frozenMaxSlot_;
  std::vector<std::uint32_t> frozenSessMax_;
  // 1 = the session's levels still equal the frozen snapshot. Cleared by
  // the RECV stage on any level transition; refreshFrozen() recomputes
  // cleared sessions at the next epoch top.
  std::vector<char> frozenValid_;

  // Per flat receiver: its data-path links as slot offsets within the
  // session's sessLink_ range (CSR).
  std::vector<std::size_t> recvSlotBegin_;
  std::vector<std::uint32_t> recvSlot_;
  std::size_t maxSlots_ = 0;

  // Per-epoch index, rebuilt serially while generation runs.
  // posList_: in-lifetime packet positions grouped by session (CSR) —
  // the RECV stage's work lists. dropOff_/dropByte_: per packet, one
  // drop flag per session slot, written by ADMIT, read by RECV.
  // linkPos_: per link, its predicted arrivals in global order (CSR),
  // packed (position << 16 | slot offset).
  std::vector<std::size_t> posBegin_;
  std::vector<std::size_t> posFill_;
  std::vector<std::size_t> posList_;
  std::vector<std::size_t> dropOff_;
  std::vector<std::uint8_t> dropByte_;
  std::size_t dropCapacity_ = 0;
  std::vector<std::size_t> linkPosBegin_;
  std::vector<std::size_t> linkFill_;
  std::vector<std::uint64_t> linkPos_;

  // Shard plans (weighted contiguous cuts, fixed at setup).
  std::size_t sessShards_ = 1;
  std::size_t linkShards_ = 1;
  std::vector<std::size_t> sessShardBounds_;
  std::vector<std::size_t> linkShardBounds_;
  // Per session-shard scratch for the divergence compare.
  std::vector<std::vector<std::uint8_t>> slotMark_;

  // Pre-epoch snapshot twins (sized once; std::copy per epoch).
  std::vector<LayeredReceiver> snapReceivers_;
  std::vector<util::Rng> snapReceiverRng_;
  std::vector<TokenBucket> snapBuckets_;
  std::vector<util::Rng> snapLossRng_;
  std::vector<std::uint64_t> snapLossState_;
  std::vector<std::uint64_t> snapDelivered_;
  std::vector<double> snapLevelIntegral_;
  std::vector<std::uint64_t> snapLevelSamples_;
  std::vector<std::uint64_t> snapBinDelivered_;
  std::vector<std::uint64_t> snapLinkForwarded_;
  std::vector<std::uint64_t> snapLinkOffered_;
  std::vector<std::uint64_t> snapLinkDropped_;
  std::vector<std::uint64_t> snapSessionForwarded_;
  std::vector<std::uint32_t> snapNonAbsorbing_;

  std::atomic<bool> diverged_{false};
  std::uint64_t epochCount_ = 0;
  std::uint64_t rollbackCount_ = 0;
};

void SpecEngine::setup() {
  core_.ensureFluidScratch();
  const std::size_t nSessions = core_.sessionCount();
  const std::size_t nLinks = network_.linkCount();
  const std::size_t nReceivers = network_.receiverCount();
  const double duration = config_.duration;

  // Receiver -> session-slot CSR. Paths are short, so the linear slot
  // search per path link is cheap and setup-only.
  recvSlotBegin_.assign(nReceivers + 1, 0);
  for (std::size_t i = 0; i < nSessions; ++i) {
    const auto& sess = network_.session(i);
    const std::size_t rb = core_.recvBegin_[i];
    for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
      recvSlotBegin_[rb + k + 1] = sess.receivers[k].dataPath.size();
    }
  }
  for (std::size_t r = 0; r < nReceivers; ++r) {
    recvSlotBegin_[r + 1] += recvSlotBegin_[r];
  }
  recvSlot_.resize(recvSlotBegin_[nReceivers]);
  maxSlots_ = 0;
  for (std::size_t i = 0; i < nSessions; ++i) {
    const auto& sess = network_.session(i);
    const std::size_t base = core_.sessLinkBegin_[i];
    const std::size_t slots = core_.sessLinkBegin_[i + 1] - base;
    maxSlots_ = std::max(maxSlots_, slots);
    const std::size_t rb = core_.recvBegin_[i];
    for (std::size_t k = 0; k < sess.receivers.size(); ++k) {
      std::size_t at = recvSlotBegin_[rb + k];
      for (const graph::LinkId l : sess.receivers[k].dataPath) {
        std::uint32_t so = 0;
        while (core_.sessLink_[base + so] != l.value) ++so;
        recvSlot_[at++] = so;
      }
    }
  }
  MCFAIR_REQUIRE(maxSlots_ < (1u << 16),
                 "session link union too large for speculative packing");

  // Epoch boundaries: every shared-link state-change time in range, the
  // uniform grid, and the run's endpoints. A fault at exactly `duration`
  // gets a zero-width final epoch so it still fires before any packet
  // emitted exactly at the horizon.
  bounds_.clear();
  bounds_.push_back(0.0);
  for (std::size_t i = 0; i < nSessions; ++i) {
    const auto& sc = core_.sessionConfigs_[i];
    if (sc.startTime > 0.0 && sc.startTime < duration) {
      bounds_.push_back(sc.startTime);
    }
    if (sc.stopTime > 0.0 && sc.stopTime < duration) {
      bounds_.push_back(sc.stopTime);
    }
  }
  bool faultAtEnd = false;
  for (const net::FaultEvent& ev : core_.faultEvents()) {
    if (ev.time > 0.0 && ev.time < duration) {
      bounds_.push_back(ev.time);
    } else if (ev.time == duration) {
      faultAtEnd = true;
    }
  }
  double totalRate = 0.0;
  for (std::size_t i = 0; i < nSessions; ++i) {
    totalRate += core_.sessAggRate_[i];
  }
  std::size_t divisions = config_.speculativeEpochs;
  if (divisions == 0) {
    divisions = std::clamp<std::size_t>(
        static_cast<std::size_t>(totalRate * duration / kTargetEpochPackets),
        1, 4096);
  }
  for (std::size_t g = 1; g < divisions; ++g) {
    bounds_.push_back(duration * static_cast<double>(g) /
                      static_cast<double>(divisions));
  }
  bounds_.push_back(duration);
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (faultAtEnd) bounds_.push_back(duration);

  // Closed-form arena sizing: a periodic stream of period p emits at
  // most width / p + 1 packets in any closed interval of that width, so
  // rate * maxWidth + layers bounds a session's epoch packets.
  double maxWidth = 0.0;
  for (std::size_t e = 0; e + 1 < bounds_.size(); ++e) {
    maxWidth = std::max(maxWidth, bounds_[e + 1] - bounds_[e]);
  }
  double capBound = 0.0;
  double dropBound = 0.0;
  for (std::size_t i = 0; i < nSessions; ++i) {
    const double perSession =
        core_.sessAggRate_[i] * maxWidth +
        static_cast<double>(core_.sessionConfigs_[i].layers) + 1.0;
    capBound += perSession;
    dropBound += perSession *
                 static_cast<double>(core_.sessLinkBegin_[i + 1] -
                                     core_.sessLinkBegin_[i]);
  }
  arenaCapacity_ = static_cast<std::size_t>(capBound) + 64;
  dropCapacity_ = static_cast<std::size_t>(dropBound) + 64 * (maxSlots_ + 1);
  arena_[0].resize(arenaCapacity_);
  arena_[1].resize(arenaCapacity_);
  cnt_.resize(nSessions);
  off_.resize(nSessions + 1);
  posBegin_.assign(nSessions + 1, 0);
  posFill_.assign(nSessions, 0);
  posList_.resize(arenaCapacity_);
  dropOff_.resize(arenaCapacity_ + 1);
  dropByte_.assign(dropCapacity_, 0);
  linkPosBegin_.assign(nLinks + 1, 0);
  linkFill_.assign(nLinks, 0);
  linkPos_.resize(dropCapacity_);

  // Shard plans. Generation and RECV cost scale with a session's packet
  // rate (RECV additionally with its receiver count); ADMIT cost with
  // the aggregate rate crossing each link.
  sessShards_ = std::max<std::size_t>(
      1, std::min(nSessions, threads_ * 4));
  {
    std::vector<double> weight(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      const double nr = static_cast<double>(core_.recvBegin_[i + 1] -
                                            core_.recvBegin_[i]);
      weight[i] = core_.sessAggRate_[i] * (1.0 + nr);
    }
    planCuts(weight, sessShards_, sessShardBounds_);
  }
  linkShards_ = std::min(nLinks, threads_);
  {
    std::vector<double> weight(nLinks, 0.0);
    for (std::size_t j = 0; j < nLinks; ++j) {
      for (std::size_t s = core_.linkSessBegin_[j];
           s < core_.linkSessBegin_[j + 1]; ++s) {
        weight[j] += core_.sessAggRate_[core_.linkSess_[s]];
      }
    }
    planCuts(weight, std::max<std::size_t>(1, linkShards_),
             linkShardBounds_);
  }
  slotMark_.assign(sessShards_, std::vector<std::uint8_t>(maxSlots_, 0));

  // Frozen snapshot storage; everything starts dirty.
  frozenMaxSlot_.assign(core_.sessLink_.size(), 0);
  frozenSessMax_.assign(nSessions, 0);
  frozenValid_.assign(nSessions, 0);

  // Snapshot twins, copy-initialized once so per-epoch snapshots are
  // element copies into existing storage.
  snapReceivers_ = core_.receivers_;
  snapReceiverRng_ = core_.receiverRng_;
  snapBuckets_ = core_.buckets_;
  snapLossRng_ = core_.lossRng_;
  snapLossState_.assign(nLinks, 0);
  snapDelivered_.assign(nReceivers, 0);
  snapLevelIntegral_.assign(nReceivers, 0.0);
  snapLevelSamples_.assign(nReceivers, 0);
  snapBinDelivered_.assign(core_.binDelivered_.size(), 0);
  snapLinkForwarded_.assign(nLinks, 0);
  snapLinkOffered_.assign(nLinks, 0);
  snapLinkDropped_.assign(nLinks, 0);
  snapSessionForwarded_.assign(core_.sessionForwarded_.size(), 0);
  snapNonAbsorbing_.assign(nSessions, 0);
}

// Closed-form emission counts for `epoch`: each layer stream has emitted
// exactly lastEmissionBefore(bounds_[epoch]) packets (the invariant the
// previous epoch's generation established), so the delta to the epoch's
// upper bound is this epoch's pull count. The final epoch is inclusive
// at `duration`, matching every serial driver's `time > duration` break.
void SpecEngine::prepareCounts(std::size_t epoch) {
  const double hi = bounds_[epoch + 1];
  const bool finalEpoch = epoch + 2 == bounds_.size();
  const std::size_t nSessions = core_.sessionCount();
  std::size_t total = 0;
  for (std::size_t i = 0; i < nSessions; ++i) {
    const LayeredSender& snd = core_.senders_[i];
    const std::size_t layers = core_.sessionConfigs_[i].layers;
    std::uint64_t c = 0;
    for (std::size_t k = 1; k <= layers; ++k) {
      const double phase = snd.layerPhase(k);
      const double period = snd.layerPeriod(k);
      const std::uint64_t target =
          finalEpoch ? lastEmissionAtMost(phase, period, hi)
                     : lastEmissionBefore(phase, period, hi);
      const std::uint64_t done = snd.layerEmitted(k);
      c += target > done ? target - done : 0;
    }
    off_[i] = total;
    cnt_[i] = static_cast<std::uint32_t>(c);
    total += c;
  }
  off_[nSessions] = total;
  MCFAIR_REQUIRE(total <= arenaCapacity_,
                 "speculative arena bound violated");
  pendingCount_ = total;
}

void SpecEngine::generateShard(std::size_t shard) {
  std::vector<SpecPacket>& out = arena_[genTarget_];
  for (std::size_t i = sessShardBounds_[shard];
       i < sessShardBounds_[shard + 1]; ++i) {
    std::size_t at = off_[i];
    const std::uint32_t n = cnt_[i];
    for (std::uint32_t q = 0; q < n; ++q) {
      const Packet p = core_.senders_[i].next();
      out[at + q] = SpecPacket{p.time, static_cast<std::uint32_t>(i), q,
                               static_cast<std::uint32_t>(p.layer),
                               static_cast<std::uint32_t>(p.syncLevel)};
    }
  }
}

void SpecEngine::sortArena(std::size_t which, std::size_t count) {
  std::sort(arena_[which].begin(), arena_[which].begin() + count,
            [](const SpecPacket& a, const SpecPacket& b) noexcept {
              if (a.time != b.time) return a.time < b.time;
              if (a.session != b.session) return a.session < b.session;
              return a.ord < b.ord;
            });
}

void SpecEngine::refreshFrozen() {
  const std::size_t nSessions = core_.sessionCount();
  for (std::size_t i = 0; i < nSessions; ++i) {
    if (frozenValid_[i]) continue;
    const std::size_t base = core_.sessLinkBegin_[i];
    const std::size_t slots = core_.sessLinkBegin_[i + 1] - base;
    for (std::size_t s = 0; s < slots; ++s) frozenMaxSlot_[base + s] = 0;
    std::uint32_t sessMax = 0;
    const std::size_t rb = core_.recvBegin_[i];
    const std::size_t re = core_.recvBegin_[i + 1];
    for (std::size_t r = rb; r < re; ++r) {
      const auto lvl =
          static_cast<std::uint32_t>(core_.receivers_[r].level());
      sessMax = std::max(sessMax, lvl);
      for (std::size_t s = recvSlotBegin_[r]; s < recvSlotBegin_[r + 1];
           ++s) {
        std::uint32_t& slot = frozenMaxSlot_[base + recvSlot_[s]];
        slot = std::max(slot, lvl);
      }
    }
    frozenSessMax_[i] = sessMax;
    frozenValid_[i] = 1;
  }
}

void SpecEngine::takeSnapshot() {
  std::copy(core_.receivers_.begin(), core_.receivers_.end(),
            snapReceivers_.begin());
  std::copy(core_.receiverRng_.begin(), core_.receiverRng_.end(),
            snapReceiverRng_.begin());
  std::copy(core_.buckets_.begin(), core_.buckets_.end(),
            snapBuckets_.begin());
  std::copy(core_.lossRng_.begin(), core_.lossRng_.end(),
            snapLossRng_.begin());
  for (std::size_t j = 0; j < core_.linkLoss_.size(); ++j) {
    if (core_.linkLoss_[j] != nullptr) {
      snapLossState_[j] = core_.linkLoss_[j]->stateWord();
    }
  }
  std::copy(core_.delivered_.begin(), core_.delivered_.end(),
            snapDelivered_.begin());
  std::copy(core_.levelIntegral_.begin(), core_.levelIntegral_.end(),
            snapLevelIntegral_.begin());
  std::copy(core_.levelSamples_.begin(), core_.levelSamples_.end(),
            snapLevelSamples_.begin());
  std::copy(core_.binDelivered_.begin(), core_.binDelivered_.end(),
            snapBinDelivered_.begin());
  std::copy(core_.linkForwarded_.begin(), core_.linkForwarded_.end(),
            snapLinkForwarded_.begin());
  std::copy(core_.linkOffered_.begin(), core_.linkOffered_.end(),
            snapLinkOffered_.begin());
  std::copy(core_.linkDropped_.begin(), core_.linkDropped_.end(),
            snapLinkDropped_.begin());
  std::copy(core_.sessionForwarded_.begin(), core_.sessionForwarded_.end(),
            snapSessionForwarded_.begin());
  std::copy(core_.nonAbsorbing_.begin(), core_.nonAbsorbing_.end(),
            snapNonAbsorbing_.begin());
}

void SpecEngine::restoreSnapshot() {
  std::copy(snapReceivers_.begin(), snapReceivers_.end(),
            core_.receivers_.begin());
  std::copy(snapReceiverRng_.begin(), snapReceiverRng_.end(),
            core_.receiverRng_.begin());
  std::copy(snapBuckets_.begin(), snapBuckets_.end(),
            core_.buckets_.begin());
  std::copy(snapLossRng_.begin(), snapLossRng_.end(),
            core_.lossRng_.begin());
  for (std::size_t j = 0; j < core_.linkLoss_.size(); ++j) {
    if (core_.linkLoss_[j] != nullptr) {
      core_.linkLoss_[j]->setStateWord(snapLossState_[j]);
    }
  }
  std::copy(snapDelivered_.begin(), snapDelivered_.end(),
            core_.delivered_.begin());
  std::copy(snapLevelIntegral_.begin(), snapLevelIntegral_.end(),
            core_.levelIntegral_.begin());
  std::copy(snapLevelSamples_.begin(), snapLevelSamples_.end(),
            core_.levelSamples_.begin());
  std::copy(snapBinDelivered_.begin(), snapBinDelivered_.end(),
            core_.binDelivered_.begin());
  std::copy(snapLinkForwarded_.begin(), snapLinkForwarded_.end(),
            core_.linkForwarded_.begin());
  std::copy(snapLinkOffered_.begin(), snapLinkOffered_.end(),
            core_.linkOffered_.begin());
  std::copy(snapLinkDropped_.begin(), snapLinkDropped_.end(),
            core_.linkDropped_.begin());
  std::copy(snapSessionForwarded_.begin(), snapSessionForwarded_.end(),
            core_.sessionForwarded_.begin());
  std::copy(snapNonAbsorbing_.begin(), snapNonAbsorbing_.end(),
            core_.nonAbsorbing_.begin());
}

// Serial per-epoch index build (overlapped with generation of the next
// epoch, which touches only the senders and the back arena): the RECV
// work lists (in-lifetime packets by session), the drop-flag layout, and
// each link's predicted arrival list in global packet order.
void SpecEngine::buildEpochIndex() {
  const std::vector<SpecPacket>& order = arena_[front_];
  const std::size_t count = frontCount_;
  const std::size_t nSessions = core_.sessionCount();
  const std::size_t nLinks = network_.linkCount();

  std::fill(posBegin_.begin(), posBegin_.end(), 0);
  std::fill(linkPosBegin_.begin(), linkPosBegin_.end(), 0);
  dropOff_[0] = 0;
  for (std::size_t p = 0; p < count; ++p) {
    const SpecPacket& sp = order[p];
    const auto& sc = core_.sessionConfigs_[sp.session];
    const bool inLife = sp.time >= sc.startTime && sp.time < sc.stopTime;
    std::size_t slots = 0;
    if (inLife) {
      ++posBegin_[sp.session + 1];
      if (frozenSessMax_[sp.session] >= sp.layer) {
        const std::size_t base = core_.sessLinkBegin_[sp.session];
        slots = core_.sessLinkBegin_[sp.session + 1] - base;
        for (std::size_t s = 0; s < slots; ++s) {
          if (frozenMaxSlot_[base + s] >= sp.layer) {
            ++linkPosBegin_[core_.sessLink_[base + s] + 1];
          }
        }
      }
    }
    dropOff_[p + 1] = dropOff_[p] + slots;
  }
  MCFAIR_REQUIRE(dropOff_[count] <= dropCapacity_,
                 "speculative drop-flag bound violated");
  for (std::size_t i = 0; i < nSessions; ++i) {
    posBegin_[i + 1] += posBegin_[i];
  }
  for (std::size_t j = 0; j < nLinks; ++j) {
    linkPosBegin_[j + 1] += linkPosBegin_[j];
  }
  std::copy(posBegin_.begin(), posBegin_.end() - 1, posFill_.begin());
  std::copy(linkPosBegin_.begin(), linkPosBegin_.end() - 1,
            linkFill_.begin());
  for (std::size_t p = 0; p < count; ++p) {
    const SpecPacket& sp = order[p];
    if (dropOff_[p + 1] != dropOff_[p]) {
      const std::size_t base = core_.sessLinkBegin_[sp.session];
      const std::size_t slots = dropOff_[p + 1] - dropOff_[p];
      for (std::size_t s = 0; s < slots; ++s) {
        if (frozenMaxSlot_[base + s] >= sp.layer) {
          linkPos_[linkFill_[core_.sessLink_[base + s]]++] =
              (static_cast<std::uint64_t>(p) << 16) | s;
        }
      }
      posList_[posFill_[sp.session]++] = p;
    } else {
      const auto& sc = core_.sessionConfigs_[sp.session];
      if (sp.time >= sc.startTime && sp.time < sc.stopTime) {
        posList_[posFill_[sp.session]++] = p;
      }
    }
  }
  std::fill(dropByte_.begin(), dropByte_.begin() + dropOff_[count], 0);
}

void SpecEngine::admitShard(std::size_t shard) {
  const std::vector<SpecPacket>& order = arena_[front_];
  const bool haveLoss = !core_.linkLoss_.empty();
  const double warmup = config_.warmup;
  const std::size_t nLinks = network_.linkCount();
  for (std::size_t j = linkShardBounds_[shard];
       j < linkShardBounds_[shard + 1]; ++j) {
    TokenBucket& bucket = core_.buckets_[j];
    LossModel* loss = haveLoss ? core_.linkLoss_[j].get() : nullptr;
    for (std::size_t at = linkPosBegin_[j]; at < linkPosBegin_[j + 1];
         ++at) {
      const std::uint64_t packed = linkPos_[at];
      const auto p = static_cast<std::size_t>(packed >> 16);
      const std::size_t slot = packed & 0xffffu;
      const SpecPacket& sp = order[p];
      const bool measuring = sp.time >= warmup;
      if (measuring) ++core_.linkOffered_[j];
      bool forwarded = bucket.admit(sp.time);
      if (forwarded && loss != nullptr) {
        forwarded = !loss->lose(core_.lossRng_[j]);
      }
      if (forwarded) {
        if (measuring) {
          ++core_.linkForwarded_[j];
          ++core_.sessionForwarded_[sp.session * nLinks + j];
        }
      } else {
        if (measuring) ++core_.linkDropped_[j];
        dropByte_[dropOff_[p] + slot] = 1;
      }
    }
  }
}

void SpecEngine::receiverShard(std::size_t shard) {
  const std::vector<SpecPacket>& order = arena_[front_];
  std::vector<std::uint8_t>& mark = slotMark_[shard];
  const double warmup = config_.warmup;
  for (std::size_t i = sessShardBounds_[shard];
       i < sessShardBounds_[shard + 1]; ++i) {
    if (diverged_.load(std::memory_order_relaxed)) return;
    const std::size_t rb = core_.recvBegin_[i];
    const std::size_t re = core_.recvBegin_[i + 1];
    const std::size_t base = core_.sessLinkBegin_[i];
    const std::size_t slots = core_.sessLinkBegin_[i + 1] - base;
    const std::size_t maxLevel = core_.sessionConfigs_[i].layers;
    bool valid = true;  // refreshFrozen() ran at the epoch top
    for (std::size_t at = posBegin_[i]; at < posBegin_[i + 1]; ++at) {
      const std::size_t p = posList_[at];
      const SpecPacket& sp = order[p];
      const bool measuring = sp.time >= warmup;
      const std::size_t layer = sp.layer;
      bool anySubscribed = false;
      for (std::size_t r = rb; r < re; ++r) {
        const std::size_t lvl = core_.receivers_[r].level();
        if (measuring) {
          core_.levelIntegral_[r] += static_cast<double>(lvl);
          ++core_.levelSamples_[r];
        }
        if (lvl >= layer) anySubscribed = true;
      }
      if (!valid) {
        // Levels moved inside this epoch: the frozen prediction the
        // ADMIT stage executed may no longer match the true touched
        // set. Compare them; any mismatch poisons the epoch.
        for (std::size_t r = rb; r < re; ++r) {
          if (core_.receivers_[r].level() < layer) continue;
          for (std::size_t s = recvSlotBegin_[r]; s < recvSlotBegin_[r + 1];
               ++s) {
            mark[recvSlot_[s]] = 1;
          }
        }
        bool mismatch = false;
        for (std::size_t s = 0; s < slots; ++s) {
          const bool predicted = frozenMaxSlot_[base + s] >= layer;
          if (predicted != (mark[s] != 0)) mismatch = true;
          mark[s] = 0;
        }
        if (mismatch) {
          frozenValid_[i] = 0;
          diverged_.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (!anySubscribed) continue;
      for (std::size_t r = rb; r < re; ++r) {
        LayeredReceiver& recv = core_.receivers_[r];
        const std::size_t before = recv.level();
        if (before < layer) continue;
        bool lost = false;
        for (std::size_t s = recvSlotBegin_[r]; s < recvSlotBegin_[r + 1];
             ++s) {
          if (dropByte_[dropOff_[p] + recvSlot_[s]]) {
            lost = true;
            break;
          }
        }
        if (!lost) {
          if (measuring) ++core_.delivered_[r];
          if (core_.nBins_ > 0) {
            ++core_.binDelivered_[r * core_.nBins_ + core_.binIndex(sp.time)];
          }
        }
        const bool wasMax = before == maxLevel;
        recv.onPacket(lost, sp.syncLevel, core_.receiverRng_[r]);
        const std::size_t after = recv.level();
        const bool isMax = after == maxLevel;
        if (wasMax != isMax) {
          // Partitioned-mode bookkeeping: per-session only (the live
          // counter is frozen, exactly as in the component lanes).
          if (isMax) {
            --core_.nonAbsorbing_[i];
          } else {
            ++core_.nonAbsorbing_[i];
          }
        }
        if (after != before) valid = false;
      }
    }
    frozenValid_[i] = valid ? 1 : 0;
  }
}

// A diverged epoch is abandoned wholesale: restore the pre-epoch
// snapshot and replay the epoch's packets serially through
// processPacketInto — literally the serial engines' per-packet path, in
// the serial order (the sorted arena). Out-of-lifetime packets re-filter
// inside processPacketInto, exactly as they do serially.
void SpecEngine::rollbackEpoch() {
  restoreSnapshot();
  const std::vector<SpecPacket>& order = arena_[front_];
  for (std::size_t p = 0; p < frontCount_; ++p) {
    const SpecPacket& sp = order[p];
    Packet pkt;
    pkt.layer = sp.layer;
    pkt.time = sp.time;
    pkt.syncLevel = sp.syncLevel;
    core_.processPacketInto(sp.session, pkt, core_.touched_);
  }
  std::fill(frozenValid_.begin(), frozenValid_.end(), 0);
  diverged_.store(false, std::memory_order_relaxed);
  ++rollbackCount_;
}

void SpecEngine::run() {
  const std::size_t epochs = bounds_.size() - 1;
  util::ShardFnRef genRef(genJob_);
  util::ShardFnRef admitRef(admitJob_);
  util::ShardFnRef recvRef(recvJob_);

  // Epoch 0 has nothing to overlap with: generate and sort it directly.
  prepareCounts(0);
  front_ = 0;
  genTarget_ = 0;
  frontCount_ = pendingCount_;
  pool_.forEachShard(sessShards_, genRef);
  sortArena(front_, frontCount_);

  for (std::size_t e = 0; e < epochs; ++e) {
    // Shared-link state changes sit exactly on epoch boundaries: every
    // fault at or before this epoch's start fires before any of its
    // packets (all at or after the boundary) — the fault-before-packet
    // order every serial driver implements.
    while (core_.nextFaultTime() <= bounds_[e]) core_.applyNextFault();
    refreshFrozen();
    const bool haveNext = e + 1 < epochs;
    std::size_t nextCount = 0;
    if (haveNext) {
      prepareCounts(e + 1);
      nextCount = pendingCount_;
      genTarget_ = front_ ^ 1;
      pool_.beginShards(sessShards_, genRef);
    }
    takeSnapshot();
    buildEpochIndex();
    if (haveNext) pool_.finishShards();
    pool_.beginShards(linkShards_, admitRef);
    if (haveNext) sortArena(front_ ^ 1, nextCount);
    pool_.finishShards();
    pool_.forEachShard(sessShards_, recvRef);
    ++epochCount_;
    if (diverged_.load(std::memory_order_relaxed)) rollbackEpoch();
    if (haveNext) {
      front_ ^= 1;
      frontCount_ = nextCount;
    }
  }
}

// Shared entry for the public driver and the parallel engine's dispatch.
ClosedLoopResult runSpeculative(const net::Network& network,
                                const ClosedLoopConfig& config,
                                std::size_t threads) {
  SimCore core(network, config);
  core.enablePartitionedLanes();
  SpecEngine engine(core, threads);
  engine.run();
  ClosedLoopResult result = core.finalize();
  result.speculationEpochs = engine.epochs();
  result.speculationRollbacks = engine.rollbacks();
  return result;
}

// The parallel engine reroutes to the speculative engine when one
// component holds at least half the population AND is large enough that
// per-component lanes cannot win. The floor keeps small fixtures on the
// lane path.
constexpr std::size_t kSpeculationDispatchFloor = 256;

// The event-driven merge shared by runClosedLoopSimulation and the fluid
// engine: session i's earliest unprocessed packet lives in pending[i];
// the queue orders the sessions by that packet's time (payload = session
// index). Advancing the simulation is pop + push: O(log sessions) per
// packet. The queue holds exactly one event per session, so after the
// seeding batch no event-queue allocation occurs. With `fluid`, every
// pop first offers the remaining run to the analytic fast-forward; a
// successful certificate ends packet execution on the spot.
ClosedLoopResult runEventDriven(const net::Network& network,
                                const ClosedLoopConfig& config,
                                bool fluid) {
  SimCore core(network, config);
  const std::size_t nSessions = core.sessionCount();
  if (fluid) core.armFluid();

  std::vector<Packet> pending;
  pending.reserve(nSessions);
  EventQueue queue;
  queue.reserve(nSessions + 1);
  std::vector<EventQueue::Pending> seed;
  seed.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
    seed.push_back(EventQueue::Pending{pending[i].time, i});
  }
  queue.scheduleAt(seed);

  while (const auto e = queue.peek()) {
    // The head is the global minimum: once it passes the horizon, every
    // pending packet has.
    if (e->time > config.duration) break;
    // Faults fire strictly before any packet at or after their time —
    // the ordering every driver implements, which keeps trajectories
    // engine-independent through a fault schedule.
    if (core.nextFaultTime() <= e->time) {
      core.applyNextFault();
      continue;
    }
    if (core.fluidWanted(e->time)) {
      const double horizon =
          std::min(config.duration, core.nextFaultTime());
      if (core.tryFluidFastForward(e->time, pending, queue, horizon)) {
        if (horizon >= config.duration) {
          // Everything from e->time on is accounted analytically; the
          // remaining queue entries are intentionally abandoned.
          queue.clear();
          break;
        }
        // Partial fast-forward up to the next fault: per-packet state
        // was reconstructed at the horizon and the queue reseeded; the
        // next iteration applies the fault and resumes per-packet.
        continue;
      }
    }
    queue.pop();
    const auto i = static_cast<std::size_t>(e->payload);
    const Packet pkt = pending[i];
    pending[i] = core.nextPacket(i);
    core.processPacket(i, pkt);
    // Departed sessions leave the merge: every later packet of i would
    // be discarded anyway, so not rescheduling is trajectory-identical
    // and stops dead sessions from dominating heap traffic under churn.
    if (pending[i].time < core.stopTime(i)) {
      queue.schedule(pending[i].time, e->payload);
    } else {
      core.onSessionDetached(i);
    }
  }
  return core.finalize();
}

// Resolved executor count for the component-parallel engine: explicit
// non-negative values win (0 and 1 both mean serial); the -1 default
// defers to the MCFAIR_SIM_THREADS environment variable (unset or
// invalid = serial).
std::size_t resolveEngineThreads(int engineThreads) {
  if (engineThreads >= 0) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(engineThreads));
  }
  return std::max<std::size_t>(
      1, util::ThreadPool::threadCountFromEnv("MCFAIR_SIM_THREADS", 1));
}

// The component-parallel merge: one event-queue lane per link-set
// connected component (sim/partition.hpp), executed concurrently on a
// util::ThreadPool. Bit-identity with runEventDriven follows from three
// facts.
//  (1) State disjointness: every mutation processPacketInto makes is
//      indexed by the packet's session, its receivers, or its links —
//      all owned by exactly one component. The only cross-component
//      state (the global touched scratch and the fluid engine's live
//      counter) is replaced per lane / frozen in partitioned mode.
//  (2) Order preservation: within a lane, packets pop in exactly the
//      serial pop order restricted to the component. Lane seeds enter
//      in ascending session order, matching the serial seeding batch's
//      sequence-number tie-break, and every reschedule follows its pop
//      just as in the serial heap; each lane applies its own links'
//      fault events strictly before any lane packet at or after their
//      time, in the schedule's normalized (time, link, kind) order.
//  (3) Commutativity: packets and faults of different lanes touch
//      disjoint state, so any interleaving of lane executions — and any
//      assignment of lanes to threads — yields the same accumulators.
ClosedLoopResult runComponentParallel(const net::Network& network,
                                      const ClosedLoopConfig& config,
                                      std::size_t threads) {
  SessionPartitioner partitioner;
  const SessionPartition& part = partitioner.ensure(network);
  const std::size_t nComp = part.componentCount;

  // Mega-merge dispatch: when one component dominates the session
  // population, component lanes are Amdahl-bound (the big lane runs
  // serially whatever the thread count) and the intra-component
  // speculative engine takes over. speculationThreads == 0 disables the
  // reroute; > 0 overrides the worker count.
  const std::size_t specThreads =
      config.speculationThreads > 0
          ? static_cast<std::size_t>(config.speculationThreads)
          : threads;
  const std::size_t largest = part.largestComponentSessions();
  if (config.speculationThreads != 0 && specThreads > 1 &&
      largest >= kSpeculationDispatchFloor &&
      largest * 2 >= network.sessionCount()) {
    ClosedLoopResult result = runSpeculative(network, config, specThreads);
    result.engineComponents = nComp;
    result.partitionRebuilds = partitioner.rebuilds();
    return result;
  }

  SimCore core(network, config);
  core.enablePartitionedLanes();
  const std::size_t nSessions = core.sessionCount();

  // Each session's lookahead packet, seeded serially in ascending
  // session order — the exact sender draws the serial engines make.
  std::vector<Packet> pending;
  pending.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
  }

  // Per-component fault sub-schedules: a stable counting sort of the
  // normalized schedule by the faulted link's component keeps each
  // lane's events in global order. Faults on orphan links are dropped —
  // their buckets are never offered a packet, so reconfiguring them is
  // unobservable (the serial engines do apply them, to no effect on any
  // result field).
  const std::span<const net::FaultEvent> faults = core.faultEvents();
  std::vector<std::size_t> laneFaultBegin(nComp + 1, 0);
  for (const net::FaultEvent& ev : faults) {
    const std::uint32_t c = part.linkComponent[ev.link.value];
    if (c != SessionPartition::kUnattached) ++laneFaultBegin[c + 1];
  }
  for (std::size_t c = 0; c < nComp; ++c) {
    laneFaultBegin[c + 1] += laneFaultBegin[c];
  }
  std::vector<std::uint32_t> laneFaults(laneFaultBegin[nComp]);
  {
    std::vector<std::size_t> fill(laneFaultBegin.begin(),
                                  laneFaultBegin.end() - 1);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const std::uint32_t c = part.linkComponent[faults[f].link.value];
      if (c != SessionPartition::kUnattached) {
        laneFaults[fill[c]++] = static_cast<std::uint32_t>(f);
      }
    }
  }

  // Per-lane touched scratch is sized to the component's own link count.
  std::vector<std::uint32_t> compLinks(nComp, 0);
  for (const std::uint32_t c : part.linkComponent) {
    if (c != SessionPartition::kUnattached) ++compLinks[c];
  }

  // One merge lane per component; seeding each lane's queue in ascending
  // session order assigns ascending sequence numbers, so equal-time ties
  // within a lane break exactly as the serial merge breaks them.
  struct Lane {
    EventQueue queue;
    std::vector<std::uint32_t> touched;
    std::size_t nextFault = 0;
  };
  std::vector<Lane> lanes(nComp);
  std::vector<EventQueue::Pending> seed;
  for (std::size_t c = 0; c < nComp; ++c) {
    const auto sessions = part.sessionsOf(static_cast<std::uint32_t>(c));
    Lane& lane = lanes[c];
    lane.queue.reserve(sessions.size() + 1);
    lane.touched.reserve(compLinks[c]);
    lane.nextFault = laneFaultBegin[c];
    seed.clear();
    for (const std::uint32_t i : sessions) {
      seed.push_back(EventQueue::Pending{pending[i].time, i});
    }
    lane.queue.scheduleAt(seed);
  }

  // Lane executor: the serial event-driven loop restricted to one
  // component. After this point no heap allocation occurs — queues hold
  // at most one event per lane session, and the touched scratch peaks at
  // the component's link count.
  const double duration = config.duration;
  auto worker = [&](std::size_t c) {
    Lane& lane = lanes[c];
    const std::size_t faultEnd = laneFaultBegin[c + 1];
    while (const auto e = lane.queue.peek()) {
      if (e->time > duration) break;
      if (lane.nextFault < faultEnd &&
          faults[laneFaults[lane.nextFault]].time <= e->time) {
        core.applyFaultEvent(faults[laneFaults[lane.nextFault]]);
        ++lane.nextFault;
        continue;
      }
      lane.queue.pop();
      const auto i = static_cast<std::size_t>(e->payload);
      const Packet pkt = pending[i];
      pending[i] = core.nextPacket(i);
      core.processPacketInto(i, pkt, lane.touched);
      if (pending[i].time < core.stopTime(i)) {
        lane.queue.schedule(pending[i].time, e->payload);
      } else {
        core.onSessionDetached(i);
      }
    }
  };
  util::ShardFnRef ref(worker);
  util::ThreadPool pool(threads);
  pool.forEachShard(nComp, ref);

  ClosedLoopResult result = core.finalize();
  result.engineComponents = nComp;
  result.partitionRebuilds = partitioner.rebuilds();
  return result;
}

}  // namespace

ClosedLoopResult runClosedLoopSimulation(const net::Network& network,
                                         const ClosedLoopConfig& config) {
  // The fluid engine takes precedence: its analytic fast-forward needs
  // the global absorbing gate the partitioned mode freezes, so the two
  // accelerations do not compose (yet).
  const std::size_t threads = resolveEngineThreads(config.engineThreads);
  if (threads > 1 && !config.fluidFastForward) {
    return runComponentParallel(network, config, threads);
  }
  return runEventDriven(network, config, config.fluidFastForward);
}

ClosedLoopResult runClosedLoopSimulationParallel(
    const net::Network& network, const ClosedLoopConfig& config) {
  return runComponentParallel(network, config,
                              resolveEngineThreads(config.engineThreads));
}

ClosedLoopResult runClosedLoopSimulationFluid(
    const net::Network& network, const ClosedLoopConfig& config) {
  return runEventDriven(network, config, true);
}

ClosedLoopResult runClosedLoopSimulationSpeculative(
    const net::Network& network, const ClosedLoopConfig& config) {
  const std::size_t threads =
      config.speculationThreads >= 0
          ? std::max<std::size_t>(
                1, static_cast<std::size_t>(config.speculationThreads))
          : resolveEngineThreads(-1);
  return runSpeculative(network, config, threads);
}

ClosedLoopResult runClosedLoopSimulationReference(
    const net::Network& network, const ClosedLoopConfig& config) {
  SimCore core(network, config);
  const std::size_t nSessions = core.sessionCount();

  // Linear-scan merge (one lookahead packet per sender, earliest first;
  // tie-break: lower session index).
  std::vector<Packet> pending;
  pending.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
  }
  while (true) {
    std::size_t sessionIdx = 0;
    for (std::size_t i = 1; i < nSessions; ++i) {
      if (pending[i].time < pending[sessionIdx].time) sessionIdx = i;
    }
    const Packet pkt = pending[sessionIdx];
    if (pkt.time > config.duration) break;
    // Same fault-before-packet ordering as the event-driven merge:
    // packet times are processed in nondecreasing order, so applying
    // every fault at or before this packet's time here is equivalent.
    while (core.nextFaultTime() <= pkt.time) core.applyNextFault();
    pending[sessionIdx] = core.nextPacket(sessionIdx);
    core.processPacket(sessionIdx, pkt);
  }
  return core.finalize();
}

double fairnessGap(const net::Network& network,
                   const ClosedLoopResult& result,
                   const fairness::Allocation& reference, double floor) {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto ref : network.receiverRefs()) {
    const double fair = reference.rate(ref);
    const double measured = result.measuredRate[ref.session][ref.receiver];
    total += std::fabs(measured - fair) / std::max(fair, floor);
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace mcfair::sim
