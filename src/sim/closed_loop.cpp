#include "sim/closed_loop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <utility>

#include "fairness/maxmin.hpp"
#include "sim/event_queue.hpp"
#include "sim/partition.hpp"
#include "sim/sender.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace mcfair::sim {

namespace {

// Continuous-refill token bucket enforcing a link's capacity.
class TokenBucket {
 public:
  TokenBucket(double rate, double depth)
      : rate_(rate), depth_(depth), tokens_(depth) {}

  /// Consumes one token at time `now`; false = drop.
  bool admit(double now) {
    tokens_ = std::min(depth_, tokens_ + rate_ * (now - lastRefill_));
    lastRefill_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  double rate() const noexcept { return rate_; }
  double depth() const noexcept { return depth_; }

  /// Token level at `now` without consuming — the exact value admit()
  /// would observe. The fluid engine's no-drop certificate starts from
  /// this state.
  double tokensAt(double now) const noexcept {
    return std::min(depth_, tokens_ + rate_ * (now - lastRefill_));
  }

  /// Reconfigures the bucket in place at a fault boundary: the current
  /// token level is materialized at `now` and clamped into the new
  /// depth, then the rate and depth switch over. A dead link (rate 0)
  /// keeps no residual tokens — it admits nothing until repaired, and a
  /// repair refills from empty at the restored rate.
  void reconfigure(double rate, double depth, double now) {
    tokens_ = std::min(depth, tokensAt(now));
    if (rate == 0.0) tokens_ = 0.0;
    rate_ = rate;
    depth_ = depth;
    lastRefill_ = now;
  }

  /// Pins the exact post-admit state of an admit() that found the
  /// bucket full: exactly `depth` tokens before the packet, depth - 1
  /// after. The fluid hand-back's windowed replay enters exact tracking
  /// through this (see SimCore::reconstructBuckets).
  void resyncFullAdmit(double now) {
    tokens_ = depth_ - 1.0;
    lastRefill_ = now;
  }

  double tokens() const noexcept { return tokens_; }
  double lastRefill() const noexcept { return lastRefill_; }

 private:
  double rate_;
  double depth_;
  double tokens_;
  double lastRefill_ = 0.0;
};

// The piecewise-constant fair reference: between consecutive session
// start/stop boundaries AND fault events the live session set and the
// effective link capacities are both constant, so one max-min solve per
// epoch suffices. A single MaxMinSolver is reused across the epochs,
// which is exactly the churn workload its incremental workspace is
// built for — and the one worker pool it owns (when solverThreads
// enables the parallel sweeps) rides along for every epoch.
//
// Fault semantics: an epoch's link capacities are base * factor of the
// last fault event at or before the epoch's start. A receiver whose
// data-path crosses a dead link (factor 0) is severed — it is excluded
// from the solve and reported at fair rate 0.0, with fairRate keeping
// the session's full receiver shape; a session with no surviving
// receiver contributes nothing to the solve. Dead links enter the epoch
// network at base capacity: no surviving data-path crosses them, so the
// value never constrains the filling.
std::vector<FairEpoch> buildFairEpochs(
    const net::Network& network,
    const std::vector<ClosedLoopSessionConfig>& sessionConfigs,
    const ClosedLoopConfig& config) {
  const double duration = config.duration;
  net::FaultSchedule faults = config.faults;
  faults.normalize(network.linkCount());

  std::vector<double> bounds;
  bounds.push_back(0.0);
  bounds.push_back(duration);
  for (const auto& sc : sessionConfigs) {
    if (sc.startTime > 0.0 && sc.startTime < duration) {
      bounds.push_back(sc.startTime);
    }
    if (sc.stopTime > 0.0 && sc.stopTime < duration) {
      bounds.push_back(sc.stopTime);
    }
  }
  for (const net::FaultEvent& ev : faults.events) {
    if (ev.time > 0.0 && ev.time < duration) bounds.push_back(ev.time);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  fairness::MaxMinOptions solverOptions;
  solverOptions.threads = config.solverThreads;
  solverOptions.validate = config.validate;
  fairness::MaxMinSolver solver(solverOptions);
  std::vector<double> factor(network.linkCount(), 1.0);
  std::size_t nextFault = 0;
  std::vector<FairEpoch> epochs;
  epochs.reserve(bounds.size() - 1);
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    FairEpoch epoch;
    epoch.begin = bounds[b];
    epoch.end = bounds[b + 1];
    while (nextFault < faults.events.size() &&
           faults.events[nextFault].time <= epoch.begin) {
      const net::FaultEvent& ev = faults.events[nextFault++];
      factor[ev.link.value] = ev.appliedFactor();
    }
    for (std::size_t i = 0; i < network.sessionCount(); ++i) {
      if (sessionConfigs[i].startTime <= epoch.begin &&
          sessionConfigs[i].stopTime >= epoch.end) {
        epoch.sessions.push_back(i);
      }
    }
    if (!epoch.sessions.empty()) {
      net::Network live;
      for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
        const double c = network.capacity(graph::LinkId{j});
        live.addLink(factor[j] > 0.0 ? c * factor[j] : c);
      }
      epoch.fairRate.reserve(epoch.sessions.size());
      // (epoch slot, surviving original receiver indices) of the
      // sessions that made it into the solve, in live-network order.
      std::vector<std::pair<std::size_t, std::vector<std::size_t>>> solved;
      for (std::size_t s = 0; s < epoch.sessions.size(); ++s) {
        const net::Session& orig = network.session(epoch.sessions[s]);
        net::Session filtered = orig;
        filtered.receivers.clear();
        std::vector<std::size_t> surviving;
        for (std::size_t k = 0; k < orig.receivers.size(); ++k) {
          bool severed = false;
          for (const graph::LinkId l : orig.receivers[k].dataPath) {
            if (factor[l.value] == 0.0) {
              severed = true;
              break;
            }
          }
          if (!severed) {
            filtered.receivers.push_back(orig.receivers[k]);
            surviving.push_back(k);
          }
        }
        epoch.fairRate.emplace_back(orig.receivers.size(), 0.0);
        if (!surviving.empty()) {
          live.addSession(std::move(filtered));
          solved.emplace_back(s, std::move(surviving));
        }
      }
      if (!solved.empty()) {
        const fairness::Allocation& a = solver.solveAllocation(live);
        for (std::size_t li = 0; li < solved.size(); ++li) {
          const auto rates = a.sessionRates(li);
          const auto& [s, surviving] = solved[li];
          for (std::size_t p = 0; p < surviving.size(); ++p) {
            epoch.fairRate[s][surviving[p]] = rates[p];
          }
        }
      }
    }
    epochs.push_back(std::move(epoch));
  }
  return epochs;
}

// The largest emission index n >= 0 whose time satisfies the boundary
// (time <= x, or strictly < x when `strict`); n = 0 means no emission
// qualifies — packets are numbered from 1. The floating-point estimate
// only seeds the search; the verdict for every boundary index comes from
// evaluating the sender's exact emission-time expression, which is what
// makes analytic interval counts bit-identical to per-packet execution.
std::uint64_t lastEmissionAt(double phase, double period, double x,
                             bool strict) noexcept {
  const double est = (x - phase) / period;
  std::uint64_t n =
      est <= 0.0 ? 0
                 : (est >= 9.0e15 ? static_cast<std::uint64_t>(9.0e15)
                                  : static_cast<std::uint64_t>(est));
  const auto within = [&](std::uint64_t i) noexcept {
    const double t = layerEmissionTime(phase, period, i);
    return strict ? t < x : t <= x;
  };
  while (n > 0 && !within(n)) --n;
  while (within(n + 1)) ++n;
  return n;
}

std::uint64_t lastEmissionAtMost(double phase, double period,
                                 double x) noexcept {
  return lastEmissionAt(phase, period, x, /*strict=*/false);
}

// Strict variant: the session-lifetime predicate (pkt.time < stopTime)
// and the complement of the start/warmup predicates (pkt.time >= bound)
// both reduce to it.
std::uint64_t lastEmissionBefore(double phase, double period,
                                 double x) noexcept {
  return lastEmissionAt(phase, period, x, /*strict=*/true);
}

// Everything the drivers share: validation, protocol state machines,
// token buckets, optional exogenous loss models, and the measurement
// accumulators — all in flat structure-of-arrays layout (receivers,
// RNG streams, and counters indexed by the network's flat receiver
// numbering; per-session views are [recvBegin_[i], recvBegin_[i+1])).
// The drivers differ only in how they merge the senders' streams into
// time order; each merged packet is handed to processPacket(), so
// trajectories are identical whenever the merge orders agree (they do —
// packet times are distinct across sessions almost surely because every
// layer stream carries a random phase offset, and within a session the
// sender orders its own layers).
//
// After construction, processPacket() performs no heap allocation: all
// scratch (touched-link marks, the touched list at its high-water mark)
// is preallocated here. The fluid fast-forward path allocates its
// certification scratch once on first use and nothing thereafter.
class SimCore {
 public:
  SimCore(const net::Network& network, const ClosedLoopConfig& config)
      : network_(network), config_(config) {
    MCFAIR_REQUIRE(network.sessionCount() >= 1, "need at least one session");
    MCFAIR_REQUIRE(config.sessions.empty() ||
                       config.sessions.size() == network.sessionCount(),
                   "sessions config must be empty or one entry per session");
    MCFAIR_REQUIRE(config.duration > 0.0 && config.warmup >= 0.0 &&
                       config.warmup < config.duration,
                   "need 0 <= warmup < duration");
    MCFAIR_REQUIRE(config.tokenBurst > 0.0, "tokenBurst must be positive");

    const std::size_t nSessions = network.sessionCount();
    sessionConfigs_ = config.sessions;
    if (sessionConfigs_.empty()) sessionConfigs_.resize(nSessions);

    util::Rng root(config.seed);

    // Flat receiver numbering shared with the network's own index.
    recvBegin_.resize(nSessions + 1);
    for (std::size_t i = 0; i <= nSessions; ++i) {
      recvBegin_[i] = network.receiverOffset(i);
    }
    const std::size_t nReceivers = network.receiverCount();

    // One sender and one set of protocol receivers per session. The
    // split() order (phase stream first, then one receiver stream per
    // receiver in session order) is part of the reproducibility contract:
    // equal seeds replay equal experiments across library versions.
    receivers_.reserve(nReceivers);
    receiverRng_.reserve(nReceivers);
    senders_.reserve(nSessions);
    nonAbsorbing_.assign(nSessions, 0);
    detached_.assign(nSessions, 0);
    util::Rng phaseRng = root.split();
    for (std::size_t i = 0; i < nSessions; ++i) {
      const auto& sc = sessionConfigs_[i];
      MCFAIR_REQUIRE(sc.layers >= 1, "sessions need at least one layer");
      MCFAIR_REQUIRE(sc.startTime >= 0.0 && sc.startTime < sc.stopTime,
                     "need 0 <= startTime < stopTime");
      senders_.emplace_back(layering::LayerScheme::exponential(sc.layers),
                            &phaseRng);
      const std::size_t nr = network.session(i).receivers.size();
      for (std::size_t k = 0; k < nr; ++k) {
        receivers_.emplace_back(sc.protocol, sc.layers, sc.initialLevel);
        receiverRng_.push_back(root.split());
      }
      if (sc.initialLevel != sc.layers) {
        nonAbsorbing_[i] = static_cast<std::uint32_t>(nr);
        nonAbsorbingLive_ += nr;
      }
    }

    buckets_.reserve(network.linkCount());
    for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
      const double c = network.capacity(graph::LinkId{j});
      buckets_.emplace_back(c, std::max(1.0, c * config.tokenBurst));
    }

    // Exogenous loss plumbing. The per-link RNG streams are split after
    // all protocol streams so lossless configurations replay the exact
    // RNG sequences of earlier library versions; splitLossStreams pins
    // the stream layout itself (one split per link, in link order), so
    // serial runs are bit-unchanged and each link's draw sequence is
    // independent of how packets on other links interleave — the
    // property the component-parallel engine relies on.
    if (config.linkLoss) {
      linkLoss_.reserve(network.linkCount());
      for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
        linkLoss_.push_back(config.linkLoss(graph::LinkId{j}));
      }
      lossRng_ = splitLossStreams(root, network.linkCount());
    }

    // Measurement accumulators (flat).
    delivered_.assign(nReceivers, 0);
    levelIntegral_.assign(nReceivers, 0.0);
    levelSamples_.assign(nReceivers, 0);
    linkForwarded_.assign(network.linkCount(), 0);
    linkOffered_.assign(network.linkCount(), 0);
    linkDropped_.assign(network.linkCount(), 0);
    sessionForwarded_.assign(nSessions * network.linkCount(), 0);

    // Optional per-bin delivery timeline.
    nBins_ = config.rateBinWidth > 0.0
                 ? static_cast<std::size_t>(
                       std::ceil(config.duration / config.rateBinWidth))
                 : 0;
    if (nBins_ > 0) binDelivered_.assign(nReceivers * nBins_, 0);

    // Scratch marks, reused per packet. The touched list can hold at most
    // one entry per link.
    linkTouched_.assign(network.linkCount(), 0);
    linkDropping_.assign(network.linkCount(), 0);
    touched_.reserve(network.linkCount());

    // Fault schedule: validated and time-sorted once; the drivers apply
    // each event strictly before any packet at or after its time.
    faults_ = config.faults;
    faults_.normalize(network.linkCount());
    baseCapacity_.reserve(network.linkCount());
    for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
      baseCapacity_.push_back(network.capacity(graph::LinkId{j}));
    }
    // Each fault can split off at most one more fluid interval.
    fluidIntervals_.reserve(faults_.events.size() + 1);

    const bool validate = config.validate.resolve();
    validateConservation_ = validate && config.validate.linkConservation;
    validateBucketReplay_ = validate && config.validate.bucketReplay;

    fluidBackoff_ = std::max(1.0, config.tokenBurst);
  }

  /// Time of the next unapplied fault event; +infinity once exhausted.
  double nextFaultTime() const noexcept {
    return nextFault_ < faults_.events.size()
               ? faults_.events[nextFault_].time
               : std::numeric_limits<double>::infinity();
  }

  /// Applies the next fault event: the link's token bucket is
  /// reconfigured in place at the event time — rate and depth follow
  /// the faulted capacity (base * factor), a dead link admits nothing —
  /// so every packet at or after the event sees the new capacity.
  /// The reconfiguration depends only on the event and the bucket's own
  /// state, so drivers that agree on packet order stay bit-identical
  /// through it. Allocation-free.
  void applyNextFault() { applyFaultEvent(faults_.events[nextFault_++]); }

  /// Applies one fault event directly (the component-parallel engine
  /// feeds each lane its own sub-schedule, so it bypasses the global
  /// nextFault_ cursor). In partitioned mode the conservation check is
  /// scoped to the faulted link: the full scan would read accumulators
  /// owned by concurrently-executing lanes.
  void applyFaultEvent(const net::FaultEvent& ev) {
    const double cap = baseCapacity_[ev.link.value] * ev.appliedFactor();
    buckets_[ev.link.value].reconfigure(
        cap, std::max(1.0, cap * config_.tokenBurst), ev.time);
    if (validateConservation_) {
      if (partitioned_) {
        checkLinkInvariant(ev.link.value, "fault");
      } else {
        checkInvariants("fault");
      }
    }
  }

  /// The full fault schedule, normalized (time, link, kind) — the
  /// parallel engine partitions it into per-component sub-schedules.
  std::span<const net::FaultEvent> faultEvents() const noexcept {
    return faults_.events;
  }

  /// Switches the core into component-parallel mode: global counters
  /// whose updates would cross component boundaries (the fluid engine's
  /// nonAbsorbingLive_ gate) are frozen, and fault-time conservation
  /// checks narrow to the faulted link. The fluid mode is never armed in
  /// this mode, so the frozen counter is never read.
  void enablePartitionedLanes() noexcept { partitioned_ = true; }

  std::size_t sessionCount() const noexcept { return senders_.size(); }

  /// The session's next packet in its own stream (time order).
  Packet nextPacket(std::size_t sessionIdx) {
    return senders_[sessionIdx].next();
  }

  /// End of the session's lifetime. Packets at or past it are discarded
  /// by processPacket, and since each sender's packet times are
  /// nondecreasing, a session whose pending packet reached stopTime can
  /// be dropped from the merge entirely without changing any trajectory.
  double stopTime(std::size_t sessionIdx) const noexcept {
    return sessionConfigs_[sessionIdx].stopTime;
  }

  /// The merge dropped this session (its pending packet reached
  /// stopTime): none of its packets will ever be processed again, so its
  /// receivers — whatever their level — can no longer change state and
  /// stop counting against the fluid engine's absorbing requirement.
  void onSessionDetached(std::size_t sessionIdx) {
    if (!detached_[sessionIdx]) {
      detached_[sessionIdx] = 1;
      if (!partitioned_) nonAbsorbingLive_ -= nonAbsorbing_[sessionIdx];
    }
  }

  /// Runs one merged packet through capacity enforcement, loss, delivery
  /// accounting, and the receivers' protocol state machines.
  void processPacket(std::size_t sessionIdx, const Packet& pkt) {
    processPacketInto(sessionIdx, pkt, touched_);
  }

  /// processPacket with a caller-owned touched-link scratch list: the
  /// component-parallel lanes each bring their own so concurrent lanes
  /// never share the scratch. Every other mutation is indexed by the
  /// packet's own session, receivers, or links — disjoint across
  /// link-set components by construction (see sim/partition.hpp) —
  /// except the fluid engine's nonAbsorbingLive_ gate, which partitioned
  /// mode freezes (the fluid mode is never armed there).
  void processPacketInto(std::size_t sessionIdx, const Packet& pkt,
                         std::vector<std::uint32_t>& touched) {
    const auto& sc = sessionConfigs_[sessionIdx];
    // Outside the session's lifetime the sender is silent.
    if (pkt.time < sc.startTime || pkt.time >= sc.stopTime) return;
    const bool measuring = pkt.time >= config_.warmup;

    const auto& sess = network_.session(sessionIdx);
    const std::size_t rb = recvBegin_[sessionIdx];
    const std::size_t re = recvBegin_[sessionIdx + 1];

    // Subscribers and the union of links leading to them.
    touched.clear();
    bool anySubscribed = false;
    for (std::size_t r = rb; r < re; ++r) {
      const std::size_t lvl = receivers_[r].level();
      if (measuring) {
        levelIntegral_[r] += static_cast<double>(lvl);
        ++levelSamples_[r];
      }
      if (lvl < pkt.layer) continue;
      anySubscribed = true;
      for (graph::LinkId l : sess.receivers[r - rb].dataPath) {
        if (!linkTouched_[l.value]) {
          linkTouched_[l.value] = 1;
          touched.push_back(l.value);
        }
      }
    }
    if (!anySubscribed) return;

    // Capacity enforcement (and optional exogenous loss) per touched
    // link. The loss coin is drawn only for packets the bucket admitted,
    // so the loss RNG stream advances identically in all drivers.
    for (std::uint32_t j : touched) {
      if (measuring) ++linkOffered_[j];
      bool forwarded = buckets_[j].admit(pkt.time);
      if (forwarded && !linkLoss_.empty() && linkLoss_[j] != nullptr) {
        forwarded = !linkLoss_[j]->lose(lossRng_[j]);
      }
      if (forwarded) {
        if (measuring) {
          ++linkForwarded_[j];
          ++sessionForwarded_[sessionIdx * network_.linkCount() + j];
        }
        linkDropping_[j] = 0;
      } else {
        if (measuring) ++linkDropped_[j];
        linkDropping_[j] = 1;
      }
    }

    // Delivery / congestion per subscriber.
    const std::size_t maxLevel = sc.layers;
    for (std::size_t r = rb; r < re; ++r) {
      if (receivers_[r].level() < pkt.layer) continue;
      bool lost = false;
      for (graph::LinkId l : sess.receivers[r - rb].dataPath) {
        if (linkDropping_[l.value]) {
          lost = true;
          break;
        }
      }
      if (!lost) {
        if (measuring) ++delivered_[r];
        if (nBins_ > 0) ++binDelivered_[r * nBins_ + binIndex(pkt.time)];
      }
      const bool wasMax = receivers_[r].level() == maxLevel;
      receivers_[r].onPacket(lost, pkt.syncLevel, receiverRng_[r]);
      const bool isMax = receivers_[r].level() == maxLevel;
      if (wasMax != isMax) {
        // A receiver is "absorbing" exactly at its top level: no protocol
        // can join past it, the Uncoordinated join coin is never drawn,
        // and Coordinated sync signals (capped at layers - 1) cannot
        // reach it — so clean packets leave its state untouched, which
        // is what the fluid certificate requires.
        if (isMax) {
          --nonAbsorbing_[sessionIdx];
          if (!partitioned_ && !detached_[sessionIdx]) --nonAbsorbingLive_;
        } else {
          ++nonAbsorbing_[sessionIdx];
          if (!partitioned_ && !detached_[sessionIdx]) ++nonAbsorbingLive_;
        }
      }
    }

    for (std::uint32_t j : touched) {
      linkTouched_[j] = 0;
      linkDropping_[j] = 0;
    }
  }

  // ---- fluid fast-forward mode ------------------------------------------

  /// Arms the fluid mode (the fluid driver calls this once). Exogenous
  /// loss disarms it permanently: every admitted packet owes its per-link
  /// RNG draw, so skipping packets would desynchronize the loss streams.
  void armFluid() { fluidArmed_ = linkLoss_.empty(); }

  /// Cheap per-event gate: is a fast-forward attempt worth the scan now?
  bool fluidWanted(double now) const noexcept {
    return fluidArmed_ && nonAbsorbingLive_ == 0 &&
           now >= nextFluidAttempt_;
  }

  /// Attempts to advance the run analytically from `tSwitch` (the time
  /// of the earliest unprocessed packet; `pending` holds each session's
  /// generated-but-unprocessed lookahead packet) to `horizon` — the end
  /// of the run, or the next fault event, whichever comes first. On
  /// success every accumulator is advanced to the horizon in closed
  /// form and true is returned. When the horizon is the end of the run
  /// the caller just stops executing packets; when it is a fault
  /// boundary the fast-forward is PARTIAL: packets strictly before the
  /// horizon are accounted analytically, then exact per-packet state is
  /// reconstructed — token buckets via replay (reconstructBuckets),
  /// senders via LayeredSender::resync, the merge queue reseeded from
  /// the resumed lookahead packets — and execution hands back to the
  /// per-packet path, which applies the fault and continues. On failure
  /// nothing changes and a retry is scheduled with exponential backoff
  /// (token buckets refill over time, so a certificate that fails now
  /// can hold later).
  ///
  /// The certificate, per link, over every interval between session
  /// start/stop boundaries in [tSwitch, duration]:
  ///   (1) every receiver that can still process a packet sits at its top
  ///       layer (absorbing — checked via the counters), so subscription
  ///       sets and per-packet behavior are constant;
  ///   (2) aggregate arrival rate R_j <= capacity c_j; and
  ///   (3) a token lower bound L_j >= S_j + margin at the interval start,
  ///       where S_j counts the periodic streams crossing the link.
  /// (2)+(3) certify no token-bucket drop: a set of S periodic streams of
  /// total rate R presents at most S + R*w arrivals in any window w, so
  /// unclamped tokens stay >= L - S + (c - R)*w >= margin >= 1 at every
  /// admit. Across an interval of width W the bound advances as
  /// L' = min(depth, L + (c - R)*W) - S (clamping only raises tokens;
  /// if the clamp binds, tokens restart from depth). The margin of 2
  /// tokens dominates any accumulated rounding drift of the bucket's
  /// incremental refill arithmetic.
  bool tryFluidFastForward(double tSwitch, std::vector<Packet>& pending,
                           EventQueue& queue, double horizon) {
    const std::size_t nSessions = sessionCount();
    const bool partial = horizon < config_.duration;
    // (1) absorbing — the live counter is the fast gate; the per-session
    // scan is authoritative (the counter can lag for sessions that
    // stopped but whose final pending pop has not happened yet).
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (!detached_[i] && sessionConfigs_[i].stopTime > tSwitch &&
          nonAbsorbing_[i] > 0) {
        return false;
      }
    }
    ensureFluidScratch();

    // Lifetime boundaries inside [tSwitch, horizon]: the only remaining
    // state changes. Measurement boundaries (warmup, bins) do not alter
    // dynamics and are handled inside the closed-form accounting.
    events_.clear();
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (detached_[i]) continue;  // contributes no further packets
      const double start = std::max(sessionConfigs_[i].startTime, tSwitch);
      const double stop = sessionConfigs_[i].stopTime;
      if (start > horizon || stop <= start) continue;
      events_.push_back(LifeEvent{start, static_cast<std::uint32_t>(i), +1});
      if (stop <= horizon) {
        events_.push_back(
            LifeEvent{stop, static_cast<std::uint32_t>(i), -1});
      }
    }
    std::sort(events_.begin(), events_.end(),
              [](const LifeEvent& a, const LifeEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.delta != b.delta) return a.delta < b.delta;
                return a.session < b.session;
              });

    const std::size_t nLinks = network_.linkCount();
    for (std::size_t j = 0; j < nLinks; ++j) {
      linkS_[j] = 0.0;
      linkR_[j] = 0.0;
      linkLast_[j] = tSwitch;
      linkLB_[j] = buckets_[j].tokensAt(tSwitch);
    }

    bool feasible = true;
    std::size_t idx = 0;
    while (feasible && idx < events_.size()) {
      const double t = events_[idx].time;
      dirtyLinks_.clear();
      while (idx < events_.size() && events_[idx].time == t) {
        const LifeEvent& ev = events_[idx];
        const double dS = static_cast<double>(
            sessionConfigs_[ev.session].layers);
        const double dR = sessAggRate_[ev.session];
        const std::size_t lb = sessLinkBegin_[ev.session];
        const std::size_t le = sessLinkBegin_[ev.session + 1];
        for (std::size_t s = lb; s < le; ++s) {
          const std::uint32_t j = sessLink_[s];
          if (!linkDirtyMark_[j]) {
            linkDirtyMark_[j] = 1;
            dirtyLinks_.push_back(j);
            // Advance the token lower bound across the segment that
            // ends here, under the segment's constant (S, R).
            const double w = t - linkLast_[j];
            if (w > 0.0) {
              linkLB_[j] = std::min(buckets_[j].depth(),
                                    linkLB_[j] +
                                        (buckets_[j].rate() - linkR_[j]) *
                                            w) -
                           linkS_[j];
              linkLast_[j] = t;
            }
          }
          linkS_[j] += ev.delta * dS;
          linkR_[j] += ev.delta * dR;
        }
        ++idx;
      }
      for (const std::uint32_t j : dirtyLinks_) {
        linkDirtyMark_[j] = 0;
        if (linkS_[j] > 0.0 &&
            (linkR_[j] > buckets_[j].rate() ||
             linkLB_[j] < linkS_[j] + kFluidTokenMargin)) {
          feasible = false;  // finish clearing marks before bailing
        }
      }
    }
    if (!feasible) {
      nextFluidAttempt_ = tSwitch + fluidBackoff_;
      fluidBackoff_ *= 2.0;
      return false;
    }

    // Certified: advance every stream analytically. Per (session, layer)
    // the unprocessed packets are emissions nDone+1, nDone+2, ... at the
    // sender's exact closed-form times; lifetime/warmup/duration clip to
    // an index range, and every accumulator update is a count times a
    // constant (levels are pinned at the top layer, all packets are
    // delivered). All additions land on integer-valued counters far
    // below 2^53, so closed-form totals equal the per-packet sums
    // bit-for-bit.
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (detached_[i]) continue;
      const auto& sc = sessionConfigs_[i];
      const LayeredSender& snd = senders_[i];
      const std::size_t rb = recvBegin_[i];
      const std::size_t re = recvBegin_[i + 1];
      const double level = static_cast<double>(sc.layers);
      const std::size_t lb = sessLinkBegin_[i];
      const std::size_t le = sessLinkBegin_[i + 1];
      for (std::size_t k = 1; k <= sc.layers; ++k) {
        const double phase = snd.layerPhase(k);
        const double period = snd.layerPeriod(k);
        const std::uint64_t nDone =
            snd.layerEmitted(k) - (pending[i].layer == k ? 1 : 0);
        // A fault horizon is exclusive: packets AT the fault time are
        // processed after the fault by every driver, so a partial
        // fast-forward accounts strictly-before emissions only. The
        // end of the run is inclusive (the drivers process packets at
        // time == duration).
        std::uint64_t nHi = partial
                                ? lastEmissionBefore(phase, period, horizon)
                                : lastEmissionAtMost(phase, period, horizon);
        if (sc.stopTime <= horizon) {
          nHi = std::min(nHi,
                         lastEmissionBefore(phase, period, sc.stopTime));
        }
        std::uint64_t nLo = nDone + 1;
        if (sc.startTime > 0.0) {
          nLo = std::max(
              nLo, lastEmissionBefore(phase, period, sc.startTime) + 1);
        }
        if (nLo > nHi) continue;
        const std::uint64_t nMeasLo = std::max(
            nLo, lastEmissionBefore(phase, period, config_.warmup) + 1);
        const std::uint64_t meas =
            nMeasLo <= nHi ? nHi - nMeasLo + 1 : 0;
        fluidPackets_ += nHi - nLo + 1;

        if (meas > 0) {
          const double measLevel =
              level * static_cast<double>(meas);  // exact: integers < 2^53
          for (std::size_t r = rb; r < re; ++r) {
            delivered_[r] += meas;
            levelSamples_[r] += meas;
            levelIntegral_[r] += measLevel;
          }
          for (std::size_t s = lb; s < le; ++s) {
            const std::uint32_t j = sessLink_[s];
            linkOffered_[j] += meas;
            linkForwarded_[j] += meas;
            sessionForwarded_[i * nLinks + j] += meas;
          }
        }
        if (nBins_ > 0) {
          // Walk the bins the stream's index range overlaps; bin
          // membership is decided by the same binIndex() expression the
          // per-packet path evaluates.
          std::uint64_t n = nLo;
          while (n <= nHi) {
            const std::size_t b =
                binIndex(layerEmissionTime(phase, period, n));
            std::uint64_t cand = lastEmissionAtMost(
                phase, period,
                static_cast<double>(b + 1) * config_.rateBinWidth);
            cand = std::clamp<std::uint64_t>(cand, n, nHi);
            while (cand < nHi &&
                   binIndex(layerEmissionTime(phase, period, cand + 1)) <=
                       b) {
              ++cand;
            }
            while (cand > n &&
                   binIndex(layerEmissionTime(phase, period, cand)) > b) {
              --cand;
            }
            const std::uint64_t cnt = cand - n + 1;
            for (std::size_t r = rb; r < re; ++r) {
              binDelivered_[r * nBins_ + b] += cnt;
            }
            n = cand + 1;
          }
        }
      }
    }

    fluidTime_ += horizon - tSwitch;
    fluidIntervals_.push_back(FluidInterval{tSwitch, horizon});
    if (!partial) return true;

    // Hand back to per-packet execution at the fault boundary.
    // (a) Token buckets: the exact state per-packet execution would
    //     have left after the last admit before the horizon.
    reconstructBuckets(pending, tSwitch, horizon);
    // (b) Senders resume at their first emission >= horizon, sessions
    //     that ended inside the interval detach, and the merge queue is
    //     reseeded from the surviving lookahead packets. All scratch is
    //     preallocated: the hand-back allocates nothing.
    queue.clear();
    seedScratch_.clear();
    for (std::size_t i = 0; i < nSessions; ++i) {
      if (detached_[i]) continue;
      const auto& sc = sessionConfigs_[i];
      if (sc.stopTime <= horizon) {
        // Its last packet was accounted analytically; the per-packet
        // merge would have dropped it by now.
        onSessionDetached(i);
        continue;
      }
      resyncCounts_.clear();
      for (std::size_t k = 1; k <= sc.layers; ++k) {
        resyncCounts_.push_back(lastEmissionBefore(
            senders_[i].layerPhase(k), senders_[i].layerPeriod(k), horizon));
      }
      senders_[i].resync(resyncCounts_);
      pending[i] = senders_[i].next();
      if (pending[i].time < sc.stopTime) {
        seedScratch_.push_back(EventQueue::Pending{pending[i].time, i});
      } else {
        onSessionDetached(i);
      }
    }
    queue.scheduleAt(seedScratch_);
    // The certificate can re-engage once the population settles again
    // after the fault; restart the retry clock from scratch.
    nextFluidAttempt_ = horizon;
    fluidBackoff_ = std::max(1.0, config_.tokenBurst);
    return true;
  }

  /// Rebuilds every token bucket's exact per-packet state at the
  /// hand-back horizon. During a certified interval no admit fails and
  /// same-time admits commute, so replaying a link's merged arrival
  /// sequence through admit() reproduces the per-packet engine's bucket
  /// state bit-for-bit. Two modes per link:
  ///  * windowed (the default): start a token LOWER BOUND at zero a
  ///    bounded window W = 2 * (depth + S + 2) / (rate - R) before the
  ///    horizon (S streams of aggregate rate R present at most
  ///    S + R*w arrivals in any window w, so the bound gains at least
  ///    (rate - R) * W - arrivals > depth over the window). The bound
  ///    can only clamp when the TRUE level clamps — it is a lower
  ///    bound of a value capped at depth — so the first arrival whose
  ///    bound clamps saw exactly `depth` true tokens, an exact state;
  ///    the remaining arrivals replay exactly through admit(). Cost
  ///    O(W * arrival rate) per link, independent of interval length.
  ///  * full replay from the switch point (the bucket is untouched
  ///    during a fluid interval, so its pre-switch state is exact):
  ///    the fallback when the window cannot be bounded (refill does
  ///    not exceed the arrival rate) or does not fit, and the oracle
  ///    the windowed mode is cross-checked against under
  ///    MCFAIR_VALIDATE.
  void reconstructBuckets(const std::vector<Packet>& pending,
                          double tSwitch, double horizon) {
    for (std::uint32_t j = 0; j < network_.linkCount(); ++j) {
      if (linkSessBegin_[j] == linkSessBegin_[j + 1]) continue;
      double streams = 0.0;
      double rate = 0.0;
      bool any = false;
      for (std::size_t s = linkSessBegin_[j]; s < linkSessBegin_[j + 1];
           ++s) {
        const std::size_t i = linkSess_[s];
        if (detached_[i]) continue;
        const auto& sc = sessionConfigs_[i];
        if (sc.startTime >= horizon || sc.stopTime <= tSwitch) continue;
        any = true;
        streams += static_cast<double>(sc.layers);
        rate += sessAggRate_[i];
      }
      if (!any) continue;  // no admits during the interval
      TokenBucket& bucket = buckets_[j];
      double from = tSwitch;
      bool windowed = false;
      if (bucket.rate() > rate) {
        const double w =
            2.0 * (bucket.depth() + streams + 2.0) / (bucket.rate() - rate);
        if (horizon - w > tSwitch) {
          from = horizon - w;
          windowed = true;
        }
      }
      if (windowed && validateBucketReplay_) {
        TokenBucket probe = bucket;
        const bool exact =
            replayLink(probe, j, pending, horizon, from, true);
        replayLink(bucket, j, pending, horizon, tSwitch, false);
        // `!exact` is a legitimate outcome (arrivals can cease before
        // the bound clamps, e.g. sessions stopping mid-window); only an
        // exact windowed state that DISAGREES with the oracle is a bug.
        if (exact && (probe.tokens() != bucket.tokens() ||
                      probe.lastRefill() != bucket.lastRefill())) {
          throw NumericError(
              "windowed token-bucket reconstruction diverged from the "
              "full replay on link " +
              std::to_string(j));
        }
        continue;
      }
      if (!windowed ||
          !replayLink(bucket, j, pending, horizon, from, true)) {
        replayLink(bucket, j, pending, horizon, tSwitch, false);
      }
    }
  }

  /// Replays link j's merged packet arrivals in [from, horizon) into
  /// `bucket`. Windowed mode tracks the zero-seeded token lower bound
  /// until it clamps at depth (then switches to exact admits); plain
  /// mode assumes the bucket already holds exact state at `from` and
  /// just admits. Returns whether the final state is exact. The merge
  /// runs on the preallocated stream-cursor heap; same-time arrivals
  /// may pop in any order (admits at equal times commute).
  bool replayLink(TokenBucket& bucket, std::uint32_t j,
                  const std::vector<Packet>& pending, double horizon,
                  double from, bool windowed) {
    streamHeap_.clear();
    for (std::size_t s = linkSessBegin_[j]; s < linkSessBegin_[j + 1];
         ++s) {
      const std::size_t i = linkSess_[s];
      if (detached_[i]) continue;
      const auto& sc = sessionConfigs_[i];
      const double stop = std::min(sc.stopTime, horizon);
      for (std::size_t k = 1; k <= sc.layers; ++k) {
        const double phase = senders_[i].layerPhase(k);
        const double period = senders_[i].layerPeriod(k);
        // First unprocessed emission (the pending lookahead counts as
        // unprocessed), clipped by the session start, the replay
        // start, and the horizon/stop — exactly the admits per-packet
        // execution performs in the window.
        std::uint64_t n = senders_[i].layerEmitted(k) -
                          (pending[i].layer == k ? 1 : 0) + 1;
        if (sc.startTime > 0.0) {
          n = std::max(n,
                       lastEmissionBefore(phase, period, sc.startTime) + 1);
        }
        n = std::max(n, lastEmissionBefore(phase, period, from) + 1);
        const std::uint64_t nHi = lastEmissionBefore(phase, period, stop);
        if (n > nHi) continue;
        streamHeap_.push_back(StreamCursor{
            layerEmissionTime(phase, period, n), phase, period, n, nHi});
      }
    }
    std::make_heap(streamHeap_.begin(), streamHeap_.end(), laterCursor);
    bool exact = !windowed;
    double lb = 0.0;
    double lbTime = from;
    while (!streamHeap_.empty()) {
      std::pop_heap(streamHeap_.begin(), streamHeap_.end(), laterCursor);
      StreamCursor cur = streamHeap_.back();
      streamHeap_.pop_back();
      if (exact) {
        bucket.admit(cur.time);
      } else {
        const double pre = lb + bucket.rate() * (cur.time - lbTime);
        if (pre >= bucket.depth()) {
          // The lower bound clamped, so the true pre-admit level was
          // exactly depth: pin the exact post-admit state.
          bucket.resyncFullAdmit(cur.time);
          exact = true;
        } else {
          lb = pre - 1.0;
          lbTime = cur.time;
        }
      }
      if (cur.n < cur.nHi) {
        ++cur.n;
        cur.time = layerEmissionTime(cur.phase, cur.period, cur.n);
        streamHeap_.push_back(cur);
        std::push_heap(streamHeap_.begin(), streamHeap_.end(), laterCursor);
      }
    }
    return exact;
  }

  /// Per-link accumulator conservation: every offered packet-link
  /// traversal was either forwarded or dropped. Checked after every
  /// fault and at finalize when validation is on.
  void checkInvariants(const char* where) const {
    for (std::size_t j = 0; j < linkOffered_.size(); ++j) {
      checkLinkInvariant(j, where);
    }
  }

  /// Single-link conservation check — what a partitioned lane may verify
  /// at a fault without reading other lanes' accumulators.
  void checkLinkInvariant(std::size_t j, const char* where) const {
    if (linkOffered_[j] != linkForwarded_[j] + linkDropped_[j]) {
      throw NumericError(std::string("link accumulator conservation "
                                     "violated at ") +
                         where + ": link " + std::to_string(j));
    }
  }

  /// Converts the accumulated counts into the measured-rate result.
  ClosedLoopResult finalize() {
    ClosedLoopResult result;
    const std::size_t nSessions = sessionCount();
    const double window = config_.duration - config_.warmup;
    result.measuredRate.resize(nSessions);
    result.meanLevel.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      const std::size_t rb = recvBegin_[i];
      const std::size_t nr = recvBegin_[i + 1] - rb;
      result.measuredRate[i].resize(nr);
      result.meanLevel[i].resize(nr);
      for (std::size_t k = 0; k < nr; ++k) {
        result.measuredRate[i][k] =
            static_cast<double>(delivered_[rb + k]) / window;
        result.meanLevel[i][k] =
            levelSamples_[rb + k] > 0
                ? levelIntegral_[rb + k] /
                      static_cast<double>(levelSamples_[rb + k])
                : static_cast<double>(sessionConfigs_[i].initialLevel);
      }
    }
    if (nBins_ > 0) {
      result.binRates.resize(nSessions);
      for (std::size_t i = 0; i < nSessions; ++i) {
        const std::size_t rb = recvBegin_[i];
        const std::size_t nr = recvBegin_[i + 1] - rb;
        result.binRates[i].resize(nr);
        for (std::size_t k = 0; k < nr; ++k) {
          result.binRates[i][k].resize(nBins_);
          for (std::size_t b = 0; b < nBins_; ++b) {
            result.binRates[i][k][b] =
                static_cast<double>(binDelivered_[(rb + k) * nBins_ + b]) /
                config_.rateBinWidth;
          }
        }
      }
    }
    const std::size_t nLinks = network_.linkCount();
    result.linkThroughput.resize(nLinks);
    result.linkDropRate.resize(nLinks);
    result.sessionLinkRate.assign(nSessions,
                                  std::vector<double>(nLinks, 0.0));
    for (std::size_t j = 0; j < nLinks; ++j) {
      result.linkThroughput[j] =
          static_cast<double>(linkForwarded_[j]) / window;
      result.linkDropRate[j] =
          linkOffered_[j] > 0 ? static_cast<double>(linkDropped_[j]) /
                                    static_cast<double>(linkOffered_[j])
                              : 0.0;
      for (std::size_t i = 0; i < nSessions; ++i) {
        result.sessionLinkRate[i][j] =
            static_cast<double>(sessionForwarded_[i * nLinks + j]) / window;
      }
    }
    if (config_.computeFairEpochs) {
      result.fairEpochs = buildFairEpochs(network_, sessionConfigs_, config_);
    }
    result.fluidTime = fluidTime_;
    result.fluidPackets = fluidPackets_;
    result.fluidIntervals = fluidIntervals_;
    if (validateConservation_) checkInvariants("finalize");
    return result;
  }

 private:
  std::size_t binIndex(double time) const noexcept {
    return std::min(nBins_ - 1, static_cast<std::size_t>(
                                    time / config_.rateBinWidth));
  }

  // One-time (per SimCore) fluid scratch: each session's touched-link
  // union in CSR form (all receivers sit at the top layer when the fluid
  // mode engages, so every packet touches the whole union), aggregate
  // stream rates, and the per-link certification state.
  void ensureFluidScratch() {
    if (fluidScratchReady_) return;
    const std::size_t nSessions = sessionCount();
    const std::size_t nLinks = network_.linkCount();
    sessLinkBegin_.resize(nSessions + 1);
    sessLinkBegin_[0] = 0;
    for (std::size_t i = 0; i < nSessions; ++i) {
      const auto path = network_.sessionDataPath(i);
      for (const graph::LinkId l : path) sessLink_.push_back(l.value);
      sessLinkBegin_[i + 1] = sessLink_.size();
    }
    sessAggRate_.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      sessAggRate_[i] =
          senders_[i].scheme().cumulativeRate(sessionConfigs_[i].layers);
    }
    events_.reserve(2 * nSessions);
    linkS_.resize(nLinks);
    linkR_.resize(nLinks);
    linkLB_.resize(nLinks);
    linkLast_.resize(nLinks);
    linkDirtyMark_.assign(nLinks, 0);
    dirtyLinks_.reserve(nLinks);
    // Hand-back scratch: the transposed link -> sessions CSR (which
    // streams cross each link) and the stream-cursor merge heap sized
    // for the largest possible stream set, so fault hand-backs are
    // allocation-free.
    linkSessBegin_.assign(nLinks + 1, 0);
    for (const std::uint32_t j : sessLink_) ++linkSessBegin_[j + 1];
    for (std::size_t j = 0; j < nLinks; ++j) {
      linkSessBegin_[j + 1] += linkSessBegin_[j];
    }
    linkSess_.resize(sessLink_.size());
    {
      std::vector<std::size_t> fill(linkSessBegin_.begin(),
                                    linkSessBegin_.end() - 1);
      for (std::size_t i = 0; i < nSessions; ++i) {
        for (std::size_t s = sessLinkBegin_[i]; s < sessLinkBegin_[i + 1];
             ++s) {
          linkSess_[fill[sessLink_[s]]++] = i;
        }
      }
    }
    std::size_t totalStreams = 0;
    std::size_t maxLayers = 0;
    for (std::size_t i = 0; i < nSessions; ++i) {
      totalStreams += sessionConfigs_[i].layers;
      maxLayers = std::max(maxLayers, sessionConfigs_[i].layers);
    }
    streamHeap_.reserve(totalStreams);
    resyncCounts_.reserve(maxLayers);
    seedScratch_.reserve(nSessions);
    fluidScratchReady_ = true;
  }

  static constexpr double kFluidTokenMargin = 2.0;

  const net::Network& network_;
  const ClosedLoopConfig& config_;
  std::vector<ClosedLoopSessionConfig> sessionConfigs_;
  std::vector<LayeredSender> senders_;

  // Flat per-receiver state (network receiverOffset numbering).
  std::vector<std::size_t> recvBegin_;  // nSessions + 1
  std::vector<LayeredReceiver> receivers_;
  std::vector<util::Rng> receiverRng_;
  std::vector<std::uint64_t> delivered_;
  std::vector<double> levelIntegral_;
  std::vector<std::uint64_t> levelSamples_;
  std::vector<std::uint64_t> binDelivered_;  // recv * nBins_ + bin

  std::vector<TokenBucket> buckets_;
  std::vector<std::unique_ptr<LossModel>> linkLoss_;  // empty = none
  std::vector<util::Rng> lossRng_;
  std::vector<std::uint64_t> linkForwarded_;
  std::vector<std::uint64_t> linkOffered_;
  std::vector<std::uint64_t> linkDropped_;
  std::vector<std::uint64_t> sessionForwarded_;  // session * nLinks + link
  std::size_t nBins_ = 0;
  std::vector<char> linkTouched_;
  std::vector<char> linkDropping_;
  std::vector<std::uint32_t> touched_;

  // Absorbing-receiver tracking (fluid eligibility).
  std::vector<std::uint32_t> nonAbsorbing_;  // per session
  std::vector<char> detached_;
  std::size_t nonAbsorbingLive_ = 0;
  // Component-parallel mode (enablePartitionedLanes): freezes
  // nonAbsorbingLive_ and scopes fault-time invariant checks per link.
  bool partitioned_ = false;

  // Fault state.
  net::FaultSchedule faults_;
  std::size_t nextFault_ = 0;
  std::vector<double> baseCapacity_;
  bool validateConservation_ = false;
  bool validateBucketReplay_ = false;

  // Fluid mode state.
  bool fluidArmed_ = false;
  double nextFluidAttempt_ = 0.0;
  double fluidBackoff_ = 1.0;
  double fluidTime_ = 0.0;
  std::uint64_t fluidPackets_ = 0;
  std::vector<FluidInterval> fluidIntervals_;
  bool fluidScratchReady_ = false;
  std::vector<std::size_t> sessLinkBegin_;  // CSR into sessLink_
  std::vector<std::uint32_t> sessLink_;
  std::vector<double> sessAggRate_;
  std::vector<std::size_t> linkSessBegin_;  // transposed: link -> sessions
  std::vector<std::size_t> linkSess_;
  struct StreamCursor {
    double time;
    double phase;
    double period;
    std::uint64_t n;
    std::uint64_t nHi;
  };
  static bool laterCursor(const StreamCursor& a,
                          const StreamCursor& b) noexcept {
    return a.time > b.time;
  }
  std::vector<StreamCursor> streamHeap_;
  std::vector<std::uint64_t> resyncCounts_;
  std::vector<EventQueue::Pending> seedScratch_;
  struct LifeEvent {
    double time;
    std::uint32_t session;
    std::int32_t delta;
  };
  std::vector<LifeEvent> events_;
  std::vector<double> linkS_;     // periodic streams crossing the link
  std::vector<double> linkR_;     // their aggregate rate
  std::vector<double> linkLB_;    // token lower bound
  std::vector<double> linkLast_;  // time linkLB_ refers to
  std::vector<char> linkDirtyMark_;
  std::vector<std::uint32_t> dirtyLinks_;
};

// The event-driven merge shared by runClosedLoopSimulation and the fluid
// engine: session i's earliest unprocessed packet lives in pending[i];
// the queue orders the sessions by that packet's time (payload = session
// index). Advancing the simulation is pop + push: O(log sessions) per
// packet. The queue holds exactly one event per session, so after the
// seeding batch no event-queue allocation occurs. With `fluid`, every
// pop first offers the remaining run to the analytic fast-forward; a
// successful certificate ends packet execution on the spot.
ClosedLoopResult runEventDriven(const net::Network& network,
                                const ClosedLoopConfig& config,
                                bool fluid) {
  SimCore core(network, config);
  const std::size_t nSessions = core.sessionCount();
  if (fluid) core.armFluid();

  std::vector<Packet> pending;
  pending.reserve(nSessions);
  EventQueue queue;
  queue.reserve(nSessions + 1);
  std::vector<EventQueue::Pending> seed;
  seed.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
    seed.push_back(EventQueue::Pending{pending[i].time, i});
  }
  queue.scheduleAt(seed);

  while (const auto e = queue.peek()) {
    // The head is the global minimum: once it passes the horizon, every
    // pending packet has.
    if (e->time > config.duration) break;
    // Faults fire strictly before any packet at or after their time —
    // the ordering every driver implements, which keeps trajectories
    // engine-independent through a fault schedule.
    if (core.nextFaultTime() <= e->time) {
      core.applyNextFault();
      continue;
    }
    if (core.fluidWanted(e->time)) {
      const double horizon =
          std::min(config.duration, core.nextFaultTime());
      if (core.tryFluidFastForward(e->time, pending, queue, horizon)) {
        if (horizon >= config.duration) {
          // Everything from e->time on is accounted analytically; the
          // remaining queue entries are intentionally abandoned.
          queue.clear();
          break;
        }
        // Partial fast-forward up to the next fault: per-packet state
        // was reconstructed at the horizon and the queue reseeded; the
        // next iteration applies the fault and resumes per-packet.
        continue;
      }
    }
    queue.pop();
    const auto i = static_cast<std::size_t>(e->payload);
    const Packet pkt = pending[i];
    pending[i] = core.nextPacket(i);
    core.processPacket(i, pkt);
    // Departed sessions leave the merge: every later packet of i would
    // be discarded anyway, so not rescheduling is trajectory-identical
    // and stops dead sessions from dominating heap traffic under churn.
    if (pending[i].time < core.stopTime(i)) {
      queue.schedule(pending[i].time, e->payload);
    } else {
      core.onSessionDetached(i);
    }
  }
  return core.finalize();
}

// Resolved executor count for the component-parallel engine: explicit
// non-negative values win (0 and 1 both mean serial); the -1 default
// defers to the MCFAIR_SIM_THREADS environment variable (unset or
// invalid = serial).
std::size_t resolveEngineThreads(int engineThreads) {
  if (engineThreads >= 0) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(engineThreads));
  }
  return std::max<std::size_t>(
      1, util::ThreadPool::threadCountFromEnv("MCFAIR_SIM_THREADS", 1));
}

// The component-parallel merge: one event-queue lane per link-set
// connected component (sim/partition.hpp), executed concurrently on a
// util::ThreadPool. Bit-identity with runEventDriven follows from three
// facts.
//  (1) State disjointness: every mutation processPacketInto makes is
//      indexed by the packet's session, its receivers, or its links —
//      all owned by exactly one component. The only cross-component
//      state (the global touched scratch and the fluid engine's live
//      counter) is replaced per lane / frozen in partitioned mode.
//  (2) Order preservation: within a lane, packets pop in exactly the
//      serial pop order restricted to the component. Lane seeds enter
//      in ascending session order, matching the serial seeding batch's
//      sequence-number tie-break, and every reschedule follows its pop
//      just as in the serial heap; each lane applies its own links'
//      fault events strictly before any lane packet at or after their
//      time, in the schedule's normalized (time, link, kind) order.
//  (3) Commutativity: packets and faults of different lanes touch
//      disjoint state, so any interleaving of lane executions — and any
//      assignment of lanes to threads — yields the same accumulators.
ClosedLoopResult runComponentParallel(const net::Network& network,
                                      const ClosedLoopConfig& config,
                                      std::size_t threads) {
  SimCore core(network, config);
  core.enablePartitionedLanes();
  const std::size_t nSessions = core.sessionCount();

  SessionPartitioner partitioner;
  const SessionPartition& part = partitioner.ensure(network);
  const std::size_t nComp = part.componentCount;

  // Each session's lookahead packet, seeded serially in ascending
  // session order — the exact sender draws the serial engines make.
  std::vector<Packet> pending;
  pending.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
  }

  // Per-component fault sub-schedules: a stable counting sort of the
  // normalized schedule by the faulted link's component keeps each
  // lane's events in global order. Faults on orphan links are dropped —
  // their buckets are never offered a packet, so reconfiguring them is
  // unobservable (the serial engines do apply them, to no effect on any
  // result field).
  const std::span<const net::FaultEvent> faults = core.faultEvents();
  std::vector<std::size_t> laneFaultBegin(nComp + 1, 0);
  for (const net::FaultEvent& ev : faults) {
    const std::uint32_t c = part.linkComponent[ev.link.value];
    if (c != SessionPartition::kUnattached) ++laneFaultBegin[c + 1];
  }
  for (std::size_t c = 0; c < nComp; ++c) {
    laneFaultBegin[c + 1] += laneFaultBegin[c];
  }
  std::vector<std::uint32_t> laneFaults(laneFaultBegin[nComp]);
  {
    std::vector<std::size_t> fill(laneFaultBegin.begin(),
                                  laneFaultBegin.end() - 1);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const std::uint32_t c = part.linkComponent[faults[f].link.value];
      if (c != SessionPartition::kUnattached) {
        laneFaults[fill[c]++] = static_cast<std::uint32_t>(f);
      }
    }
  }

  // Per-lane touched scratch is sized to the component's own link count.
  std::vector<std::uint32_t> compLinks(nComp, 0);
  for (const std::uint32_t c : part.linkComponent) {
    if (c != SessionPartition::kUnattached) ++compLinks[c];
  }

  // One merge lane per component; seeding each lane's queue in ascending
  // session order assigns ascending sequence numbers, so equal-time ties
  // within a lane break exactly as the serial merge breaks them.
  struct Lane {
    EventQueue queue;
    std::vector<std::uint32_t> touched;
    std::size_t nextFault = 0;
  };
  std::vector<Lane> lanes(nComp);
  std::vector<EventQueue::Pending> seed;
  for (std::size_t c = 0; c < nComp; ++c) {
    const auto sessions = part.sessionsOf(static_cast<std::uint32_t>(c));
    Lane& lane = lanes[c];
    lane.queue.reserve(sessions.size() + 1);
    lane.touched.reserve(compLinks[c]);
    lane.nextFault = laneFaultBegin[c];
    seed.clear();
    for (const std::uint32_t i : sessions) {
      seed.push_back(EventQueue::Pending{pending[i].time, i});
    }
    lane.queue.scheduleAt(seed);
  }

  // Lane executor: the serial event-driven loop restricted to one
  // component. After this point no heap allocation occurs — queues hold
  // at most one event per lane session, and the touched scratch peaks at
  // the component's link count.
  const double duration = config.duration;
  auto worker = [&](std::size_t c) {
    Lane& lane = lanes[c];
    const std::size_t faultEnd = laneFaultBegin[c + 1];
    while (const auto e = lane.queue.peek()) {
      if (e->time > duration) break;
      if (lane.nextFault < faultEnd &&
          faults[laneFaults[lane.nextFault]].time <= e->time) {
        core.applyFaultEvent(faults[laneFaults[lane.nextFault]]);
        ++lane.nextFault;
        continue;
      }
      lane.queue.pop();
      const auto i = static_cast<std::size_t>(e->payload);
      const Packet pkt = pending[i];
      pending[i] = core.nextPacket(i);
      core.processPacketInto(i, pkt, lane.touched);
      if (pending[i].time < core.stopTime(i)) {
        lane.queue.schedule(pending[i].time, e->payload);
      } else {
        core.onSessionDetached(i);
      }
    }
  };
  util::ShardFnRef ref(worker);
  util::ThreadPool pool(threads);
  pool.forEachShard(nComp, ref);

  ClosedLoopResult result = core.finalize();
  result.engineComponents = nComp;
  result.partitionRebuilds = partitioner.rebuilds();
  return result;
}

}  // namespace

ClosedLoopResult runClosedLoopSimulation(const net::Network& network,
                                         const ClosedLoopConfig& config) {
  // The fluid engine takes precedence: its analytic fast-forward needs
  // the global absorbing gate the partitioned mode freezes, so the two
  // accelerations do not compose (yet).
  const std::size_t threads = resolveEngineThreads(config.engineThreads);
  if (threads > 1 && !config.fluidFastForward) {
    return runComponentParallel(network, config, threads);
  }
  return runEventDriven(network, config, config.fluidFastForward);
}

ClosedLoopResult runClosedLoopSimulationParallel(
    const net::Network& network, const ClosedLoopConfig& config) {
  return runComponentParallel(network, config,
                              resolveEngineThreads(config.engineThreads));
}

ClosedLoopResult runClosedLoopSimulationFluid(
    const net::Network& network, const ClosedLoopConfig& config) {
  return runEventDriven(network, config, true);
}

ClosedLoopResult runClosedLoopSimulationReference(
    const net::Network& network, const ClosedLoopConfig& config) {
  SimCore core(network, config);
  const std::size_t nSessions = core.sessionCount();

  // Linear-scan merge (one lookahead packet per sender, earliest first;
  // tie-break: lower session index).
  std::vector<Packet> pending;
  pending.reserve(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    pending.push_back(core.nextPacket(i));
  }
  while (true) {
    std::size_t sessionIdx = 0;
    for (std::size_t i = 1; i < nSessions; ++i) {
      if (pending[i].time < pending[sessionIdx].time) sessionIdx = i;
    }
    const Packet pkt = pending[sessionIdx];
    if (pkt.time > config.duration) break;
    // Same fault-before-packet ordering as the event-driven merge:
    // packet times are processed in nondecreasing order, so applying
    // every fault at or before this packet's time here is equivalent.
    while (core.nextFaultTime() <= pkt.time) core.applyNextFault();
    pending[sessionIdx] = core.nextPacket(sessionIdx);
    core.processPacket(sessionIdx, pkt);
  }
  return core.finalize();
}

double fairnessGap(const net::Network& network,
                   const ClosedLoopResult& result,
                   const fairness::Allocation& reference, double floor) {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto ref : network.receiverRefs()) {
    const double fair = reference.rate(ref);
    const double measured = result.measuredRate[ref.session][ref.receiver];
    total += std::fabs(measured - fair) / std::max(fair, floor);
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace mcfair::sim
