#include "sim/closed_loop.hpp"

#include <algorithm>
#include <cmath>

#include "fairness/maxmin.hpp"
#include "sim/sender.hpp"
#include "util/error.hpp"

namespace mcfair::sim {

namespace {

// Continuous-refill token bucket enforcing a link's capacity.
class TokenBucket {
 public:
  TokenBucket(double rate, double depth)
      : rate_(rate), depth_(depth), tokens_(depth) {}

  /// Consumes one token at time `now`; false = drop.
  bool admit(double now) {
    tokens_ = std::min(depth_, tokens_ + rate_ * (now - lastRefill_));
    lastRefill_ = now;
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

 private:
  double rate_;
  double depth_;
  double tokens_;
  double lastRefill_ = 0.0;
};

// The piecewise-constant fair reference: between consecutive session
// start/stop boundaries the set of live sessions is constant, so one
// max-min solve per epoch suffices. A single MaxMinSolver is reused
// across the epochs, which is exactly the churn workload its incremental
// workspace is built for — and the one worker pool it owns (when
// solverThreads enables the parallel sweeps) rides along for every epoch.
std::vector<FairEpoch> buildFairEpochs(
    const net::Network& network,
    const std::vector<ClosedLoopSessionConfig>& sessionConfigs,
    double duration, int solverThreads) {
  std::vector<double> bounds;
  bounds.push_back(0.0);
  bounds.push_back(duration);
  for (const auto& sc : sessionConfigs) {
    if (sc.startTime > 0.0 && sc.startTime < duration) {
      bounds.push_back(sc.startTime);
    }
    if (sc.stopTime > 0.0 && sc.stopTime < duration) {
      bounds.push_back(sc.stopTime);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  fairness::MaxMinOptions solverOptions;
  solverOptions.threads = solverThreads;
  fairness::MaxMinSolver solver(solverOptions);
  std::vector<FairEpoch> epochs;
  epochs.reserve(bounds.size() - 1);
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    FairEpoch epoch;
    epoch.begin = bounds[b];
    epoch.end = bounds[b + 1];
    for (std::size_t i = 0; i < network.sessionCount(); ++i) {
      if (sessionConfigs[i].startTime <= epoch.begin &&
          sessionConfigs[i].stopTime >= epoch.end) {
        epoch.sessions.push_back(i);
      }
    }
    if (!epoch.sessions.empty()) {
      net::Network live;
      for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
        live.addLink(network.capacity(graph::LinkId{j}));
      }
      for (const std::size_t i : epoch.sessions) {
        live.addSession(network.session(i));
      }
      const fairness::Allocation& a = solver.solveAllocation(live);
      epoch.fairRate.reserve(epoch.sessions.size());
      for (std::size_t s = 0; s < epoch.sessions.size(); ++s) {
        const auto rates = a.sessionRates(s);
        epoch.fairRate.emplace_back(rates.begin(), rates.end());
      }
    }
    epochs.push_back(std::move(epoch));
  }
  return epochs;
}

}  // namespace

ClosedLoopResult runClosedLoopSimulation(const net::Network& network,
                                         const ClosedLoopConfig& config) {
  MCFAIR_REQUIRE(network.sessionCount() >= 1, "need at least one session");
  MCFAIR_REQUIRE(config.sessions.empty() ||
                     config.sessions.size() == network.sessionCount(),
                 "sessions config must be empty or one entry per session");
  MCFAIR_REQUIRE(config.duration > 0.0 && config.warmup >= 0.0 &&
                     config.warmup < config.duration,
                 "need 0 <= warmup < duration");
  MCFAIR_REQUIRE(config.tokenBurst > 0.0, "tokenBurst must be positive");

  const std::size_t nSessions = network.sessionCount();
  std::vector<ClosedLoopSessionConfig> sessionConfigs = config.sessions;
  if (sessionConfigs.empty()) sessionConfigs.resize(nSessions);

  util::Rng root(config.seed);

  // One sender and one set of protocol receivers per session.
  std::vector<LayeredSender> senders;
  std::vector<std::vector<LayeredReceiver>> receivers(nSessions);
  std::vector<std::vector<util::Rng>> receiverRng(nSessions);
  senders.reserve(nSessions);
  util::Rng phaseRng = root.split();
  for (std::size_t i = 0; i < nSessions; ++i) {
    const auto& sc = sessionConfigs[i];
    MCFAIR_REQUIRE(sc.layers >= 1, "sessions need at least one layer");
    MCFAIR_REQUIRE(sc.startTime >= 0.0 && sc.startTime < sc.stopTime,
                   "need 0 <= startTime < stopTime");
    senders.emplace_back(layering::LayerScheme::exponential(sc.layers),
                         &phaseRng);
    const std::size_t nr = network.session(i).receivers.size();
    for (std::size_t k = 0; k < nr; ++k) {
      receivers[i].emplace_back(sc.protocol, sc.layers, sc.initialLevel);
      receiverRng[i].push_back(root.split());
    }
  }

  std::vector<TokenBucket> buckets;
  buckets.reserve(network.linkCount());
  for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
    const double c = network.capacity(graph::LinkId{j});
    buckets.emplace_back(c, std::max(1.0, c * config.tokenBurst));
  }

  // Measurement accumulators.
  ClosedLoopResult result;
  result.measuredRate.resize(nSessions);
  result.meanLevel.resize(nSessions);
  std::vector<std::vector<std::uint64_t>> delivered(nSessions);
  std::vector<std::vector<double>> levelIntegral(nSessions);
  std::vector<std::vector<std::uint64_t>> levelSamples(nSessions);
  for (std::size_t i = 0; i < nSessions; ++i) {
    const std::size_t nr = network.session(i).receivers.size();
    delivered[i].assign(nr, 0);
    levelIntegral[i].assign(nr, 0.0);
    levelSamples[i].assign(nr, 0);
  }
  std::vector<std::uint64_t> linkForwarded(network.linkCount(), 0);
  std::vector<std::uint64_t> linkOffered(network.linkCount(), 0);
  std::vector<std::uint64_t> linkDropped(network.linkCount(), 0);
  std::vector<std::vector<std::uint64_t>> sessionForwarded(
      nSessions, std::vector<std::uint64_t>(network.linkCount(), 0));

  // Optional per-bin delivery timeline.
  const std::size_t nBins =
      config.rateBinWidth > 0.0
          ? static_cast<std::size_t>(
                std::ceil(config.duration / config.rateBinWidth))
          : 0;
  std::vector<std::vector<std::vector<std::uint64_t>>> binDelivered;
  if (nBins > 0) {
    binDelivered.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      binDelivered[i].assign(network.session(i).receivers.size(),
                             std::vector<std::uint64_t>(nBins, 0));
    }
  }

  // Merge the senders' packet streams in time order (one lookahead
  // packet per sender).
  std::vector<Packet> pending;
  pending.reserve(nSessions);
  for (auto& s : senders) pending.push_back(s.next());

  // Scratch marks, reused per packet.
  std::vector<char> linkTouched(network.linkCount(), 0);
  std::vector<char> linkDropping(network.linkCount(), 0);
  std::vector<std::uint32_t> touched;

  while (true) {
    // Earliest pending packet (tie-break: lower session index).
    std::size_t sessionIdx = 0;
    for (std::size_t i = 1; i < nSessions; ++i) {
      if (pending[i].time < pending[sessionIdx].time) sessionIdx = i;
    }
    const Packet pkt = pending[sessionIdx];
    if (pkt.time > config.duration) break;
    pending[sessionIdx] = senders[sessionIdx].next();
    // Outside the session's lifetime the sender is silent.
    if (pkt.time < sessionConfigs[sessionIdx].startTime ||
        pkt.time >= sessionConfigs[sessionIdx].stopTime) {
      continue;
    }
    const bool measuring = pkt.time >= config.warmup;

    const auto& sess = network.session(sessionIdx);
    auto& rcvrs = receivers[sessionIdx];

    // Subscribers and the union of links leading to them.
    touched.clear();
    bool anySubscribed = false;
    for (std::size_t k = 0; k < rcvrs.size(); ++k) {
      if (measuring) {
        levelIntegral[sessionIdx][k] +=
            static_cast<double>(rcvrs[k].level());
        ++levelSamples[sessionIdx][k];
      }
      if (rcvrs[k].level() < pkt.layer) continue;
      anySubscribed = true;
      for (graph::LinkId l : sess.receivers[k].dataPath) {
        if (!linkTouched[l.value]) {
          linkTouched[l.value] = 1;
          touched.push_back(l.value);
        }
      }
    }
    if (!anySubscribed) continue;

    // Capacity enforcement per touched link.
    for (std::uint32_t j : touched) {
      if (measuring) ++linkOffered[j];
      if (buckets[j].admit(pkt.time)) {
        if (measuring) {
          ++linkForwarded[j];
          ++sessionForwarded[sessionIdx][j];
        }
        linkDropping[j] = 0;
      } else {
        if (measuring) ++linkDropped[j];
        linkDropping[j] = 1;
      }
    }

    // Delivery / congestion per subscriber.
    for (std::size_t k = 0; k < rcvrs.size(); ++k) {
      if (rcvrs[k].level() < pkt.layer) continue;
      bool lost = false;
      for (graph::LinkId l : sess.receivers[k].dataPath) {
        if (linkDropping[l.value]) {
          lost = true;
          break;
        }
      }
      if (!lost) {
        if (measuring) ++delivered[sessionIdx][k];
        if (nBins > 0) {
          const auto bin = std::min(
              nBins - 1, static_cast<std::size_t>(
                             pkt.time / config.rateBinWidth));
          ++binDelivered[sessionIdx][k][bin];
        }
      }
      rcvrs[k].onPacket(lost, pkt.syncLevel, receiverRng[sessionIdx][k]);
    }

    for (std::uint32_t j : touched) {
      linkTouched[j] = 0;
      linkDropping[j] = 0;
    }
  }

  const double window = config.duration - config.warmup;
  for (std::size_t i = 0; i < nSessions; ++i) {
    const std::size_t nr = network.session(i).receivers.size();
    result.measuredRate[i].resize(nr);
    result.meanLevel[i].resize(nr);
    for (std::size_t k = 0; k < nr; ++k) {
      result.measuredRate[i][k] =
          static_cast<double>(delivered[i][k]) / window;
      result.meanLevel[i][k] =
          levelSamples[i][k] > 0
              ? levelIntegral[i][k] /
                    static_cast<double>(levelSamples[i][k])
              : static_cast<double>(sessionConfigs[i].initialLevel);
    }
  }
  if (nBins > 0) {
    result.binRates.resize(nSessions);
    for (std::size_t i = 0; i < nSessions; ++i) {
      const std::size_t nr = network.session(i).receivers.size();
      result.binRates[i].resize(nr);
      for (std::size_t k = 0; k < nr; ++k) {
        result.binRates[i][k].resize(nBins);
        for (std::size_t b = 0; b < nBins; ++b) {
          result.binRates[i][k][b] =
              static_cast<double>(binDelivered[i][k][b]) /
              config.rateBinWidth;
        }
      }
    }
  }
  result.linkThroughput.resize(network.linkCount());
  result.linkDropRate.resize(network.linkCount());
  result.sessionLinkRate.assign(
      nSessions, std::vector<double>(network.linkCount(), 0.0));
  for (std::uint32_t j = 0; j < network.linkCount(); ++j) {
    result.linkThroughput[j] =
        static_cast<double>(linkForwarded[j]) / window;
    result.linkDropRate[j] =
        linkOffered[j] > 0 ? static_cast<double>(linkDropped[j]) /
                                 static_cast<double>(linkOffered[j])
                           : 0.0;
    for (std::size_t i = 0; i < nSessions; ++i) {
      result.sessionLinkRate[i][j] =
          static_cast<double>(sessionForwarded[i][j]) / window;
    }
  }
  if (config.computeFairEpochs) {
    result.fairEpochs = buildFairEpochs(network, sessionConfigs,
                                        config.duration, config.solverThreads);
  }
  return result;
}

double fairnessGap(const net::Network& network,
                   const ClosedLoopResult& result,
                   const fairness::Allocation& reference, double floor) {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto ref : network.receiverRefs()) {
    const double fair = reference.rate(ref);
    const double measured = result.measuredRate[ref.session][ref.receiver];
    total += std::fabs(measured - fair) / std::max(fair, floor);
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace mcfair::sim
