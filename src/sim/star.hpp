// The modified-star experiments of Section 4 / Figure 7.
//
// One layered session: sender S behind a shared link (loss rate p_s), one
// fanout link per receiver (independent loss rates p_k) — Figure 7(b); two
// receivers gives the Figure 7(a) analysis topology. The simulation is
// synchronous and idealized exactly as the paper's model: no propagation
// delay, no join/leave latency, and receivers with identical loss
// observations act identically.
//
// Redundancy measurement (Definition 3): a packet crosses the shared link
// iff at least one receiver is joined to its layer at emission time; the
// session's redundancy on the shared link is
//   (packets forwarded on the shared link) / max_k (packets delivered to
//   receiver k).
#pragma once

#include <optional>
#include <vector>

#include "layering/layers.hpp"
#include "sim/receiver.hpp"
#include "sim/trace.hpp"

namespace mcfair::sim {

/// One experiment's parameters.
struct StarConfig {
  std::size_t receivers = 100;
  std::size_t layers = 8;
  ProtocolKind protocol = ProtocolKind::kCoordinated;
  /// Bernoulli loss rate on the shared link (one draw per packet, seen by
  /// every subscribed receiver).
  double sharedLossRate = 0.0001;
  /// Bernoulli loss rate applied independently on every fanout link.
  double independentLossRate = 0.0;
  /// Optional per-receiver fanout loss override (size == receivers).
  std::vector<double> perReceiverLossRate;
  /// Packets the sender transmits (the paper uses 100,000).
  std::uint64_t totalPackets = 100000;
  std::uint64_t seed = 1;
  /// Subscription level every receiver starts at.
  std::size_t initialLevel = 1;
  /// Multicast leave latency in simulated time units: after a receiver
  /// leaves a layer, the shared link keeps forwarding it for this long
  /// (Section 5: "long leave latencies will also increase redundancy").
  /// 0 models instantaneous leaves (the paper's base model).
  double leaveLatency = 0.0;
  /// Optional bursty (Gilbert-Elliott) loss on the shared link; when set
  /// it replaces the Bernoulli sharedLossRate. Models the temporally
  /// correlated loss of the measurement literature the paper cites [21].
  struct BurstLoss {
    double goodToBad = 0.0;
    double badToGood = 1.0;
    double lossGood = 0.0;
    double lossBad = 0.0;
  };
  std::optional<BurstLoss> sharedBurstLoss;
  /// Priority dropping on the shared link (Section 5 / [1]: "might
  /// priority dropping schemes for layered approaches aid in reducing
  /// redundancy by increasing coordination among receivers?"). When set,
  /// the shared-link loss probability of a packet scales linearly with
  /// its layer — congestion discards enhancement layers first and spares
  /// the base — normalized so the bandwidth-weighted average loss under
  /// full subscription still equals sharedLossRate. Mutually exclusive
  /// with sharedBurstLoss.
  bool prioritySharedDropping = false;
  /// Optional non-owning event observer (join/leave/congestion per
  /// receiver); must outlive the run. See sim/trace.hpp.
  TraceSink* trace = nullptr;
};

/// Aggregated outcome of one run.
struct StarResult {
  /// Shared-link redundancy per Definition 3.
  double redundancy = 1.0;
  /// Packets forwarded on the shared link.
  std::uint64_t sharedLinkPackets = 0;
  /// Packets delivered per receiver.
  std::vector<std::uint64_t> deliveredPackets;
  /// max_k deliveredPackets[k].
  std::uint64_t maxDelivered = 0;
  /// Simulated duration (time units; layer 1 has rate 1).
  double duration = 0.0;
  /// Mean subscription level, averaged over packets and receivers.
  double meanLevel = 0.0;
  std::uint64_t totalJoins = 0;
  std::uint64_t totalLeaves = 0;
  std::uint64_t totalCongestionEvents = 0;
};

/// Runs one star-topology experiment.
StarResult runStarSimulation(const StarConfig& config);

/// Mean redundancy over `runs` independent replicas (seeds seed, seed+1,
/// ...), with the 95% confidence half-width — one Figure 8 data point.
struct RedundancyEstimate {
  double mean = 1.0;
  double ci95 = 0.0;
  std::size_t runs = 0;
};
RedundancyEstimate estimateRedundancy(const StarConfig& config,
                                      std::size_t runs);

}  // namespace mcfair::sim
