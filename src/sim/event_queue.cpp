#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace mcfair::sim {

std::uint64_t EventQueue::schedule(double time, std::uint64_t payload) {
  MCFAIR_REQUIRE(time >= 0.0, "event time must be non-negative");
  const std::uint64_t seq = nextSequence_++;
  heap_.push(Event{time, seq, payload});
  return seq;
}

std::optional<Event> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  Event e = heap_.top();
  heap_.pop();
  return e;
}

std::optional<Event> EventQueue::peek() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.top();
}

}  // namespace mcfair::sim
