#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcfair::sim {

std::uint64_t EventQueue::schedule(double time, std::uint64_t payload) {
  MCFAIR_REQUIRE(time >= 0.0, "event time must be non-negative");
  const std::uint64_t seq = nextSequence_++;
  heap_.push_back(Event{time, seq, payload});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return seq;
}

std::uint64_t EventQueue::scheduleAt(std::span<const Pending> batch) {
  const std::uint64_t first = nextSequence_;
  if (batch.empty()) return first;
  // Validate the whole batch before touching the heap so a bad entry
  // cannot leave a half-appended, non-heapified queue behind.
  for (const Pending& p : batch) {
    MCFAIR_REQUIRE(p.time >= 0.0, "event time must be non-negative");
  }
  heap_.reserve(heap_.size() + batch.size());
  for (const Pending& p : batch) {
    heap_.push_back(Event{p.time, nextSequence_++, p.payload});
  }
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  return first;
}

EventQueue EventQueue::buildFrom(std::span<const Pending> batch,
                                 std::size_t extraCapacity) {
  for (const Pending& p : batch) {
    MCFAIR_REQUIRE(p.time >= 0.0, "event time must be non-negative");
  }
  EventQueue q;
  q.heap_.reserve(batch.size() + extraCapacity);
  for (const Pending& p : batch) {
    q.heap_.push_back(Event{p.time, q.nextSequence_++, p.payload});
  }
  std::make_heap(q.heap_.begin(), q.heap_.end(), Later{});
  return q;
}

std::optional<Event> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Event e = heap_.back();
  heap_.pop_back();
  return e;
}

std::optional<Event> EventQueue::peek() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front();
}

}  // namespace mcfair::sim
