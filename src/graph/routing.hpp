// Shortest-path routing over a Graph.
//
// The paper assumes "the network employs a routing algorithm, such that for
// each receiver there is a sequence of links that carries data from X_i to
// r_{i,k}" (Section 2). We provide hop-count (BFS) and weighted (Dijkstra)
// shortest paths with deterministic tie-breaking (lowest node id first) so
// experiments are reproducible.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace mcfair::graph {

/// A simple path: nodes visited in order plus the links between them
/// (links.size() == nodes.size() - 1).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  std::size_t hopCount() const noexcept { return links.size(); }
};

/// Hop-count shortest path from `from` to `to`; std::nullopt when
/// unreachable. Deterministic: among equal-length paths, prefers the one
/// whose predecessor chain uses the lowest node ids.
std::optional<Path> shortestPath(const Graph& g, NodeId from, NodeId to);

/// Weighted shortest path (Dijkstra). `weight[l.value]` must be >= 0 for
/// every link; throws PreconditionError otherwise. Deterministic with a
/// documented tie-break: among equal-cost shortest paths, every node on
/// the returned path takes the lowest-node-id optimal predecessor
/// (lowest link id between parallel links) — see graph/route_plan.hpp,
/// which implements the selection and backs this function. Each call
/// copies the weights and builds the full source tree; for repeated
/// queries from the same sources, construct a RoutePlan once and reuse
/// its cached trees instead.
std::optional<Path> shortestPathWeighted(const Graph& g, NodeId from,
                                         NodeId to,
                                         const std::vector<double>& weight);

/// All-nodes predecessor tree of a BFS from `root`:
/// result[v] = link used to reach v (unset for root / unreachable nodes).
/// Encoded as link id + 1, with 0 meaning "none".
std::vector<std::uint32_t> bfsPredecessors(const Graph& g, NodeId root);

}  // namespace mcfair::graph
