#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mcfair::graph {

namespace {

// Union-find over node ids (path halving + union by size).
class Components {
 public:
  explicit Components(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }
 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

bool isConnected(const Graph& g) {
  if (g.nodeCount() == 0) return true;
  Components c(g.nodeCount());
  std::size_t merges = 0;
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    const auto [a, b] = g.endpoints(LinkId{l});
    if (c.unite(a.value, b.value)) ++merges;
  }
  return merges == g.nodeCount() - 1;
}

}  // namespace

Graph scaleFreeGraph(util::Rng& rng, const ScaleFreeGraphOptions& opts) {
  const std::size_t n = opts.nodes;
  const std::size_t m = opts.edgesPerNode;
  MCFAIR_REQUIRE(m >= 1, "scale-free growth needs edgesPerNode >= 1");
  MCFAIR_REQUIRE(n > m, "scale-free growth needs nodes > edgesPerNode");
  MCFAIR_REQUIRE(opts.capacity > 0.0, "capacity must be positive");

  Graph g;
  g.addNodes(n);
  // Each endpoint slot appears once per incident edge, so a uniform draw
  // over the slots picks an attachment target with probability
  // proportional to its degree (the classic BA trick).
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(2 * m * n);
  std::vector<std::uint32_t> targets;
  for (std::size_t v = m; v < n; ++v) {
    targets.clear();
    if (v == m) {
      // Seed: the first growing node connects to every seed node, which
      // bootstraps the degree distribution without a separate clique.
      for (std::uint32_t t = 0; t < m; ++t) targets.push_back(t);
    } else {
      while (targets.size() < m) {
        const std::uint32_t t =
            endpoints[rng.below(endpoints.size())];
        if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
          targets.push_back(t);
        }
      }
    }
    for (const std::uint32_t t : targets) {
      g.addLink(NodeId{static_cast<std::uint32_t>(v)}, NodeId{t},
                opts.capacity);
      endpoints.push_back(t);
      endpoints.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return g;
}

Graph waxmanGraph(util::Rng& rng, const WaxmanGraphOptions& opts) {
  const std::size_t n = opts.nodes;
  MCFAIR_REQUIRE(n >= 2, "a Waxman graph needs >= 2 nodes");
  MCFAIR_REQUIRE(opts.alpha > 0.0 && opts.alpha <= 1.0,
                 "Waxman alpha must lie in (0, 1]");
  MCFAIR_REQUIRE(opts.beta > 0.0, "Waxman beta must be positive");
  MCFAIR_REQUIRE(opts.capacity > 0.0, "capacity must be positive");

  std::vector<double> x(n), y(n);
  for (std::size_t v = 0; v < n; ++v) {
    x[v] = rng.uniform01();
    y[v] = rng.uniform01();
  }
  const auto distance = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    return std::sqrt(dx * dx + dy * dy);
  };

  Graph g;
  g.addNodes(n);
  Components comp(n);
  const double scale = opts.beta * std::sqrt(2.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (rng.bernoulli(opts.alpha * std::exp(-distance(a, b) / scale))) {
        g.addLink(NodeId{static_cast<std::uint32_t>(a)},
                  NodeId{static_cast<std::uint32_t>(b)}, opts.capacity);
        comp.unite(a, b);
      }
    }
  }
  // Stitch stranded components onto node 0's component through the
  // geometrically nearest cross pair (ties break to lowest ids), so the
  // repair preserves the model's short-link bias and is deterministic.
  for (std::size_t v = 1; v < n; ++v) {
    if (comp.find(v) == comp.find(0)) continue;
    std::size_t bestA = 0, bestB = v;
    double bestD = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < n; ++a) {
      if (comp.find(a) != comp.find(0)) continue;
      for (std::size_t b = 0; b < n; ++b) {
        if (comp.find(b) != comp.find(v)) continue;
        const double d = distance(a, b);
        if (d < bestD) {
          bestD = d;
          bestA = a;
          bestB = b;
        }
      }
    }
    g.addLink(NodeId{static_cast<std::uint32_t>(bestA)},
              NodeId{static_cast<std::uint32_t>(bestB)}, opts.capacity);
    comp.unite(bestA, bestB);
  }
  return g;
}

Graph randomRegularGraph(util::Rng& rng,
                         const RandomRegularGraphOptions& opts) {
  const std::size_t n = opts.nodes;
  const std::size_t d = opts.degree;
  MCFAIR_REQUIRE(d >= 1 && d < n, "need 1 <= degree < nodes");
  MCFAIR_REQUIRE((n * d) % 2 == 0, "nodes * degree must be even");
  MCFAIR_REQUIRE(opts.capacity > 0.0, "capacity must be positive");

  std::vector<std::uint32_t> stubs(n * d);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < d; ++k) {
      stubs[v * d + k] = static_cast<std::uint32_t>(v);
    }
  }
  for (std::size_t attempt = 0; attempt < opts.maxAttempts; ++attempt) {
    // Fisher-Yates, then pair consecutive stubs.
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      std::swap(stubs[i], stubs[rng.below(i + 1)]);
    }
    Graph g;
    g.addNodes(n);
    bool ok = true;
    // adjacency-matrix-free duplicate check: per node, sorted partner
    // probe via the graph's own adjacency (degree is small).
    for (std::size_t i = 0; ok && i < stubs.size(); i += 2) {
      const std::uint32_t a = stubs[i];
      const std::uint32_t b = stubs[i + 1];
      if (a == b) {
        ok = false;
        break;
      }
      for (const Adjacency& adj : g.neighbors(NodeId{a})) {
        if (adj.neighbor.value == b) {
          ok = false;
          break;
        }
      }
      if (ok) g.addLink(NodeId{a}, NodeId{b}, opts.capacity);
    }
    if (ok && isConnected(g)) return g;
  }
  throw ModelError("randomRegularGraph: no simple connected pairing after " +
                   std::to_string(opts.maxAttempts) + " attempts");
}

}  // namespace mcfair::graph
