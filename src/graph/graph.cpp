#include "graph/graph.hpp"

#include "util/error.hpp"

namespace mcfair::graph {

NodeId Graph::addNode(std::string label) {
  const NodeId id{static_cast<std::uint32_t>(nodeLabels_.size())};
  nodeLabels_.push_back(std::move(label));
  adj_.emplace_back();
  return id;
}

NodeId Graph::addNodes(std::size_t count) {
  MCFAIR_REQUIRE(count > 0, "addNodes requires count > 0");
  const NodeId first{static_cast<std::uint32_t>(nodeLabels_.size())};
  for (std::size_t i = 0; i < count; ++i) addNode();
  return first;
}

LinkId Graph::addLink(NodeId a, NodeId b, double capacity) {
  checkNode(a);
  checkNode(b);
  MCFAIR_REQUIRE(a != b, "self-loop links are not allowed");
  MCFAIR_REQUIRE(capacity > 0.0, "link capacity must be positive");
  const LinkId id{static_cast<std::uint32_t>(capacities_.size())};
  capacities_.push_back(capacity);
  ends_.emplace_back(std::min(a, b), std::max(a, b));
  adj_[a.value].push_back({b, id});
  adj_[b.value].push_back({a, id});
  return id;
}

double Graph::capacity(LinkId l) const {
  checkLink(l);
  return capacities_[l.value];
}

void Graph::setCapacity(LinkId l, double capacity) {
  checkLink(l);
  MCFAIR_REQUIRE(capacity > 0.0, "link capacity must be positive");
  capacities_[l.value] = capacity;
}

std::pair<NodeId, NodeId> Graph::endpoints(LinkId l) const {
  checkLink(l);
  return ends_[l.value];
}

const std::string& Graph::label(NodeId n) const {
  checkNode(n);
  return nodeLabels_[n.value];
}

const std::vector<Adjacency>& Graph::neighbors(NodeId n) const {
  checkNode(n);
  return adj_[n.value];
}

void Graph::checkNode(NodeId n) const {
  if (n.value >= nodeLabels_.size()) {
    throw ModelError("node id " + std::to_string(n.value) +
                     " out of range (graph has " +
                     std::to_string(nodeLabels_.size()) + " nodes)");
  }
}

void Graph::checkLink(LinkId l) const {
  if (l.value >= capacities_.size()) {
    throw ModelError("link id " + std::to_string(l.value) +
                     " out of range (graph has " +
                     std::to_string(capacities_.size()) + " links)");
  }
}

}  // namespace mcfair::graph
