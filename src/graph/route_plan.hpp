// Routing-policy layer: per-source shortest-path trees over a general
// graph, built once and cached, from which multicast distribution trees
// embedded in meshed topologies are derived.
//
// The paper's model (Section 2) only assumes "a routing algorithm, such
// that for each receiver there is a sequence of links that carries data
// from X_i to r_{i,k}" — it never requires the topology itself to be a
// tree. A RoutePlan is that routing algorithm made explicit: for every
// source it materializes one shortest-path tree (hop count via BFS, or
// weighted via Dijkstra with deterministic tie-breaking), and every
// receiver's data-path is read off the tree of its session's source.
// Within one session the union of paths is still a tree (a per-source
// SPT), as DVMRP/PIM-style multicast routing builds; across sessions
// with different sources the routed paths form a general mesh — the
// setting where congestion structure is picked by routing, not by the
// topology alone.
//
// Per-source trees are stored as bfsPredecessors-style flat arrays
// (link id + 1, 0 = none) appended into one contiguous buffer; scratch
// state (distances, settle ranks, heap) is reused across sources, so
// building S sources costs O(S * E log V) time (O(S * (V + E)) for hop
// count) with no per-source allocation churn once warm.
//
// Tie-breaking (kWeighted): among equal-cost shortest paths the plan is
// deterministic and documented — nodes are settled in (distance, node
// id) order, and each settled node's predecessor is the lowest (node id,
// link id) pair among its already-settled neighbors that lie on a
// shortest path. With strictly positive weights this is exactly "the
// lowest-node-id optimal predecessor" (link id breaks ties between
// parallel links); zero-weight plateaus fall back to earliest-settled,
// which the settle order makes deterministic as well. kHopCount
// reproduces bfsPredecessors() bit-for-bit (first-found predecessor in
// adjacency order), so tree-era consumers refactored onto a RoutePlan
// keep producing byte-identical networks.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/tree.hpp"

namespace mcfair::graph {

/// How a RoutePlan picks paths.
enum class RoutePolicy {
  kHopCount,  ///< BFS shortest paths (bfsPredecessors-compatible)
  kWeighted,  ///< Dijkstra on per-link weights, lowest-id tie-break
};

/// Routing configuration for a RoutePlan.
struct RouteOptions {
  RoutePolicy policy = RoutePolicy::kHopCount;
  /// kWeighted only: one non-negative weight per link; empty = unit
  /// weights (then kWeighted computes hop-count distances but with the
  /// documented lowest-id tie-break instead of BFS adjacency order).
  std::vector<double> weights;
};

/// Cached per-source shortest-path trees over one Graph. The graph must
/// outlive the plan and must not be mutated while the plan is in use
/// (trees are built against the adjacency at construction time).
class RoutePlan {
 public:
  /// Validates options (kWeighted: weights empty or one per link, all
  /// >= 0; throws PreconditionError otherwise). Builds no trees yet.
  explicit RoutePlan(const Graph& g, RouteOptions options = {});

  const Graph& graph() const noexcept { return *graph_; }
  RoutePolicy policy() const noexcept { return options_.policy; }

  /// Builds (and caches) the shortest-path tree rooted at `src`.
  /// O(E log V) weighted / O(V + E) hop count; a no-op when cached.
  void ensureSource(NodeId src);

  /// Number of distinct sources with a built tree.
  std::size_t builtSourceCount() const noexcept { return sources_.size(); }

  /// True when `dst` is reachable from `src` (builds src's tree).
  bool reachable(NodeId src, NodeId dst);

  /// The routed data-path from `src` to `dst` as the link sequence,
  /// source-side first (empty when src == dst). Throws ModelError when
  /// unreachable.
  std::vector<LinkId> path(NodeId src, NodeId dst);

  /// Appends the src -> dst link sequence to `out` (allocation-free when
  /// `out` has capacity). Throws ModelError when unreachable.
  void appendPath(NodeId src, NodeId dst, std::vector<LinkId>& out);

  /// The multicast distribution tree for one session: per-receiver
  /// data-paths read off src's shortest-path tree plus their
  /// deduplicated union. Same contract as buildShortestPathTree()
  /// (throws on empty receiver lists, a receiver at the source, or an
  /// unreachable receiver) — with kHopCount it returns bit-identical
  /// trees.
  MulticastTree distributionTree(NodeId src,
                                 const std::vector<NodeId>& receivers);

  /// The raw predecessor array of src's tree (link id + 1 per node, 0 =
  /// none), bfsPredecessors-compatible; builds src's tree. The pointer
  /// is invalidated by the next tree build — any ensureSource / path /
  /// reachable / distributionTree call that touches a source without a
  /// cached tree reallocates the backing storage — so copy what you
  /// need before routing from another source.
  const std::uint32_t* predecessors(NodeId src);

  /// Incremental re-route on a failed-edge mask (one flag per graph
  /// link; nonzero = the edge is down and must not carry any path).
  /// Cached trees are revalidated against the delta from the previous
  /// mask and only the invalidated ones are rebuilt, with the exact
  /// same builders (and therefore the exact same tie-breaks) a fresh
  /// plan under the mask would use — predecessors() compares
  /// bit-identical either way. A tree survives untouched when (a) no
  /// newly failed edge appears in it and (b) no newly restored edge
  /// (u, v, w) satisfies d(u) + w <= d(v) or d(v) + w <= d(u) on the
  /// tree's distances (it can neither shorten a path nor win a
  /// tie-break). Nodes cut off by the mask simply lose their
  /// predecessor: reachable() turns false and path() throws ModelError,
  /// the severed-receiver semantics the fault layer builds on. With
  /// MCFAIR_VALIDATE set, every apply cross-checks all cached trees
  /// against a from-scratch plan under the same mask.
  void applyEdgeMask(const std::vector<char>& failed);

  /// The active failed-edge mask (empty = nothing failed).
  const std::vector<char>& edgeMask() const noexcept { return mask_; }

 private:
  std::uint32_t slotFor(NodeId src);
  void buildHopCountTree(NodeId src, std::uint32_t* predLink,
                         double* distSlot);
  void buildWeightedTree(NodeId src, std::uint32_t* predLink,
                         double* distSlot);
  void rebuildSlot(std::uint32_t slot);
  bool edgeDown(std::uint32_t link) const noexcept {
    return !mask_.empty() && mask_[link] != 0;
  }

  const Graph* graph_;
  RouteOptions options_;
  std::vector<std::uint32_t> slotOf_;    // node -> slot + 1, 0 = unbuilt
  std::vector<std::uint32_t> sources_;   // slot -> source node
  std::vector<std::uint32_t> predLink_;  // slot * V + v -> link + 1
  std::vector<double> distOf_;           // slot * V + v -> tree distance
  std::vector<char> mask_;               // per-link failed flags
  // Scratch reused across source builds (see buildWeightedTree).
  std::vector<double> dist_;
  std::vector<std::uint32_t> settleRank_;
  std::vector<std::uint32_t> settleOrder_;
};

}  // namespace mcfair::graph
