#include "graph/route_plan.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>

#include "graph/routing.hpp"
#include "util/error.hpp"
#include "util/validate.hpp"

namespace mcfair::graph {

namespace {
constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
}  // namespace

RoutePlan::RoutePlan(const Graph& g, RouteOptions options)
    : graph_(&g), options_(std::move(options)) {
  if (options_.policy == RoutePolicy::kWeighted) {
    if (options_.weights.empty()) {
      options_.weights.assign(g.linkCount(), 1.0);
    }
    MCFAIR_REQUIRE(options_.weights.size() == g.linkCount(),
                   "one route weight per link is required");
    for (double w : options_.weights) {
      MCFAIR_REQUIRE(w >= 0.0, "route weights must be non-negative");
    }
  }
  slotOf_.assign(g.nodeCount(), 0);
}

void RoutePlan::ensureSource(NodeId src) { (void)slotFor(src); }

std::uint32_t RoutePlan::slotFor(NodeId src) {
  graph_->checkNode(src);
  if (slotOf_[src.value] != 0) return slotOf_[src.value] - 1;
  const auto slot = static_cast<std::uint32_t>(sources_.size());
  sources_.push_back(src.value);
  predLink_.resize(predLink_.size() + graph_->nodeCount(), 0);
  distOf_.resize(distOf_.size() + graph_->nodeCount(),
                 std::numeric_limits<double>::infinity());
  std::uint32_t* pred = predLink_.data() +
                        static_cast<std::size_t>(slot) * graph_->nodeCount();
  double* dist = distOf_.data() +
                 static_cast<std::size_t>(slot) * graph_->nodeCount();
  if (options_.policy == RoutePolicy::kHopCount) {
    buildHopCountTree(src, pred, dist);
  } else {
    buildWeightedTree(src, pred, dist);
  }
  slotOf_[src.value] = slot + 1;
  return slot;
}

void RoutePlan::buildHopCountTree(NodeId src, std::uint32_t* predLink,
                                  double* distSlot) {
  // Bit-identical to bfsPredecessors(): first-found predecessor in
  // adjacency order, written into the plan's flat storage. Masked
  // (failed) edges are skipped as if absent from the adjacency.
  const Graph& g = *graph_;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::fill(distSlot, distSlot + g.nodeCount(), kInf);
  settleRank_.assign(g.nodeCount(), 0);  // doubles as the seen[] array
  std::queue<NodeId> q;
  settleRank_[src.value] = 1;
  distSlot[src.value] = 0.0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Adjacency& adj : g.neighbors(u)) {
      if (edgeDown(adj.link.value)) continue;
      if (settleRank_[adj.neighbor.value] != 0) continue;
      settleRank_[adj.neighbor.value] = 1;
      predLink[adj.neighbor.value] = adj.link.value + 1;
      distSlot[adj.neighbor.value] = distSlot[u.value] + 1.0;
      q.push(adj.neighbor);
    }
  }
}

void RoutePlan::buildWeightedTree(NodeId src, std::uint32_t* predLink,
                                  double* distSlot) {
  const Graph& g = *graph_;
  const std::vector<double>& w = options_.weights;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist_.assign(g.nodeCount(), kInf);
  settleRank_.assign(g.nodeCount(), kNone);
  settleOrder_.clear();

  // Phase 1: Dijkstra with (distance, node id) keys. The heap key's node
  // component makes the settle order a deterministic total order even
  // across equal distances; the final dist[] values themselves are
  // heap-order independent. Masked (failed) edges never relax.
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist_[src.value] = 0.0;
  pq.emplace(0.0, src.value);
  while (!pq.empty()) {
    const auto [d, uv] = pq.top();
    pq.pop();
    if (settleRank_[uv] != kNone) continue;  // lazy deletion
    settleRank_[uv] = static_cast<std::uint32_t>(settleOrder_.size());
    settleOrder_.push_back(uv);
    for (const Adjacency& adj : g.neighbors(NodeId{uv})) {
      if (edgeDown(adj.link.value)) continue;
      const double nd = d + w[adj.link.value];
      if (nd < dist_[adj.neighbor.value]) {
        dist_[adj.neighbor.value] = nd;
        pq.emplace(nd, adj.neighbor.value);
      }
    }
  }

  // Phase 2: deterministic predecessor selection. Each settled node
  // (except the source) takes the lowest (node id, link id) neighbor
  // that (a) settled earlier and (b) lies on a shortest path — i.e.
  // dist[u] + w == dist[v] exactly; the relaxation that produced
  // dist[v] guarantees at least one exact candidate. With positive
  // weights every optimal predecessor settles before v, so this is the
  // documented lowest-node-id tie-break.
  for (std::size_t i = 1; i < settleOrder_.size(); ++i) {
    const std::uint32_t v = settleOrder_[i];
    std::uint32_t bestNode = kNone;
    std::uint32_t bestLink = kNone;
    for (const Adjacency& adj : g.neighbors(NodeId{v})) {
      if (edgeDown(adj.link.value)) continue;
      const std::uint32_t u = adj.neighbor.value;
      if (settleRank_[u] >= i) continue;  // unsettled or settled later
      if (dist_[u] + w[adj.link.value] != dist_[v]) continue;
      if (u < bestNode || (u == bestNode && adj.link.value < bestLink)) {
        bestNode = u;
        bestLink = adj.link.value;
      }
    }
    predLink[v] = bestLink + 1;  // a candidate always exists (see above)
  }
  std::copy(dist_.begin(), dist_.end(), distSlot);
}

void RoutePlan::rebuildSlot(std::uint32_t slot) {
  const std::size_t base =
      static_cast<std::size_t>(slot) * graph_->nodeCount();
  std::uint32_t* pred = predLink_.data() + base;
  double* dist = distOf_.data() + base;
  std::fill(pred, pred + graph_->nodeCount(), 0u);
  const NodeId src{sources_[slot]};
  if (options_.policy == RoutePolicy::kHopCount) {
    buildHopCountTree(src, pred, dist);
  } else {
    buildWeightedTree(src, pred, dist);
  }
}

void RoutePlan::applyEdgeMask(const std::vector<char>& failed) {
  const Graph& g = *graph_;
  MCFAIR_REQUIRE(failed.empty() || failed.size() == g.linkCount(),
                 "the failed-edge mask needs one flag per link");

  // Delta against the previous mask: which edges just went down, which
  // just came back.
  auto wasDown = [this](std::uint32_t l) {
    return !mask_.empty() && mask_[l] != 0;
  };
  auto isDown = [&failed](std::uint32_t l) {
    return !failed.empty() && failed[l] != 0;
  };
  std::vector<char> newlyFailed(g.linkCount(), 0);
  std::vector<std::uint32_t> restored;
  bool anyFailed = false;
  for (std::uint32_t l = 0; l < g.linkCount(); ++l) {
    if (isDown(l) && !wasDown(l)) {
      newlyFailed[l] = 1;
      anyFailed = true;
    } else if (!isDown(l) && wasDown(l)) {
      restored.push_back(l);
    }
  }
  mask_.assign(failed.begin(), failed.end());
  if (sources_.empty() || (!anyFailed && restored.empty())) return;

  const std::size_t nodes = g.nodeCount();
  for (std::uint32_t slot = 0; slot < sources_.size(); ++slot) {
    const std::uint32_t* pred = predLink_.data() +
                                static_cast<std::size_t>(slot) * nodes;
    const double* dist = distOf_.data() +
                         static_cast<std::size_t>(slot) * nodes;
    bool rebuild = false;
    if (anyFailed) {
      for (std::size_t v = 0; v < nodes && !rebuild; ++v) {
        const std::uint32_t enc = pred[v];
        rebuild = enc != 0 && newlyFailed[enc - 1] != 0;
      }
    }
    for (std::size_t i = 0; i < restored.size() && !rebuild; ++i) {
      const std::uint32_t l = restored[i];
      const auto [a, b] = g.endpoints(LinkId{l});
      const double w = options_.policy == RoutePolicy::kHopCount
                           ? 1.0
                           : options_.weights[l];
      // A restored edge only matters when it can shorten a path or win
      // a shortest-path tie-break; unreachable endpoints (inf) compare
      // conservatively into a rebuild.
      rebuild = dist[a.value] + w <= dist[b.value] ||
                dist[b.value] + w <= dist[a.value];
    }
    if (rebuild) rebuildSlot(slot);
  }

  if (util::validateEnv()) {
    // Paranoia: every cached tree must match a from-scratch plan built
    // under the same mask, bit for bit.
    RoutePlan fresh(g, options_);
    fresh.applyEdgeMask(mask_);  // no slots yet: just stores the mask
    for (std::uint32_t slot = 0; slot < sources_.size(); ++slot) {
      const NodeId src{sources_[slot]};
      const std::uint32_t* freshPred = fresh.predecessors(src);
      const std::uint32_t* pred = predLink_.data() +
                                  static_cast<std::size_t>(slot) * nodes;
      for (std::size_t v = 0; v < nodes; ++v) {
        if (pred[v] != freshPred[v]) {
          throw NumericError(
              "incremental re-route diverged from a fresh rebuild at "
              "source " +
              std::to_string(src.value) + ", node " + std::to_string(v));
        }
      }
    }
  }
}

bool RoutePlan::reachable(NodeId src, NodeId dst) {
  graph_->checkNode(dst);
  const std::uint32_t slot = slotFor(src);
  if (src == dst) return true;
  return predLink_[static_cast<std::size_t>(slot) * graph_->nodeCount() +
                   dst.value] != 0;
}

std::vector<LinkId> RoutePlan::path(NodeId src, NodeId dst) {
  std::vector<LinkId> out;
  appendPath(src, dst, out);
  return out;
}

void RoutePlan::appendPath(NodeId src, NodeId dst, std::vector<LinkId>& out) {
  graph_->checkNode(dst);
  const std::uint32_t slot = slotFor(src);
  const std::uint32_t* pred =
      predLink_.data() + static_cast<std::size_t>(slot) * graph_->nodeCount();
  const std::size_t first = out.size();
  NodeId cur = dst;
  while (cur != src) {
    const std::uint32_t enc = pred[cur.value];
    if (enc == 0) {
      throw ModelError("node " + std::to_string(dst.value) +
                       " is unreachable from source " +
                       std::to_string(src.value));
    }
    const LinkId l{enc - 1};
    out.push_back(l);
    const auto [a, b] = graph_->endpoints(l);
    cur = (cur == a) ? b : a;
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

MulticastTree RoutePlan::distributionTree(
    NodeId src, const std::vector<NodeId>& receivers) {
  MCFAIR_REQUIRE(!receivers.empty(), "a tree needs at least one receiver");
  const std::uint32_t slot = slotFor(src);
  const std::uint32_t* pred =
      predLink_.data() + static_cast<std::size_t>(slot) * graph_->nodeCount();

  MulticastTree tree;
  tree.sender = src;
  tree.receiverPaths.reserve(receivers.size());
  for (NodeId r : receivers) {
    graph_->checkNode(r);
    MCFAIR_REQUIRE(r != src, "receiver cannot be at the sender node");
    if (pred[r.value] == 0) {
      throw ModelError("receiver node " + std::to_string(r.value) +
                       " is unreachable from sender " +
                       std::to_string(src.value));
    }
    std::vector<LinkId> path;
    appendPath(src, r, path);
    tree.receiverPaths.push_back(std::move(path));
  }

  std::vector<LinkId> all;
  for (const auto& p : tree.receiverPaths) {
    all.insert(all.end(), p.begin(), p.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  tree.sessionLinks = std::move(all);
  return tree;
}

const std::uint32_t* RoutePlan::predecessors(NodeId src) {
  const std::uint32_t slot = slotFor(src);
  return predLink_.data() + static_cast<std::size_t>(slot) * graph_->nodeCount();
}

}  // namespace mcfair::graph
