// Undirected network graph with link capacities.
//
// This is the substrate beneath the paper's network model (Section 2): a
// set of nodes connected by n links l_1..l_n, each with a capacity c_j that
// "limits the aggregate rate of flow it can transmit in either direction".
// Routing and multicast-tree construction live in routing.hpp / tree.hpp;
// the fairness model (src/net) consumes data-paths, not graphs, so small
// paper examples can also be built without any graph at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcfair::graph {

/// Strongly-typed node index.
struct NodeId {
  std::uint32_t value = 0;
  friend bool operator==(NodeId, NodeId) = default;
  friend auto operator<=>(NodeId, NodeId) = default;
};

/// Strongly-typed link index.
struct LinkId {
  std::uint32_t value = 0;
  friend bool operator==(LinkId, LinkId) = default;
  friend auto operator<=>(LinkId, LinkId) = default;
};

/// An adjacency entry: the neighboring node and the link that reaches it.
struct Adjacency {
  NodeId neighbor;
  LinkId link;
};

/// Undirected multigraph with per-link capacities.
class Graph {
 public:
  /// Adds a node; `label` is for diagnostics only.
  NodeId addNode(std::string label = "");

  /// Adds `count` unlabeled nodes and returns the first id (ids are
  /// consecutive).
  NodeId addNodes(std::size_t count);

  /// Adds an undirected link between distinct existing nodes with positive
  /// capacity. Parallel links are allowed.
  LinkId addLink(NodeId a, NodeId b, double capacity);

  std::size_t nodeCount() const noexcept { return nodeLabels_.size(); }
  std::size_t linkCount() const noexcept { return capacities_.size(); }

  /// Capacity of a link.
  double capacity(LinkId l) const;

  /// Replaces a link's capacity (used by what-if experiments).
  void setCapacity(LinkId l, double capacity);

  /// Endpoints of a link as (lower id, higher id).
  std::pair<NodeId, NodeId> endpoints(LinkId l) const;

  /// Node label (possibly empty).
  const std::string& label(NodeId n) const;

  /// Adjacency list of a node, ordered by insertion.
  const std::vector<Adjacency>& neighbors(NodeId n) const;

  /// Throws ModelError unless the id is valid for this graph.
  void checkNode(NodeId n) const;
  void checkLink(LinkId l) const;

 private:
  std::vector<std::string> nodeLabels_;
  std::vector<double> capacities_;
  std::vector<std::pair<NodeId, NodeId>> ends_;
  std::vector<std::vector<Adjacency>> adj_;
};

}  // namespace mcfair::graph
