#include "graph/tree.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcfair::graph {

MulticastTree buildShortestPathTree(const Graph& g, NodeId sender,
                                    const std::vector<NodeId>& receivers) {
  g.checkNode(sender);
  MCFAIR_REQUIRE(!receivers.empty(), "a tree needs at least one receiver");

  // One BFS from the sender; every receiver path follows the same
  // predecessor chain, so the union is a tree by construction.
  const auto pred = bfsPredecessors(g, sender);

  MulticastTree tree;
  tree.sender = sender;
  tree.receiverPaths.reserve(receivers.size());
  for (NodeId r : receivers) {
    g.checkNode(r);
    MCFAIR_REQUIRE(r != sender, "receiver cannot be at the sender node");
    std::vector<LinkId> path;
    NodeId cur = r;
    while (cur != sender) {
      const std::uint32_t enc = pred[cur.value];
      if (enc == 0) {
        throw ModelError("receiver node " + std::to_string(r.value) +
                         " is unreachable from sender " +
                         std::to_string(sender.value));
      }
      const LinkId l{enc - 1};
      path.push_back(l);
      const auto [a, b] = g.endpoints(l);
      cur = (cur == a) ? b : a;
    }
    std::reverse(path.begin(), path.end());
    tree.receiverPaths.push_back(std::move(path));
  }

  std::vector<LinkId> all;
  for (const auto& p : tree.receiverPaths) {
    all.insert(all.end(), p.begin(), p.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  tree.sessionLinks = std::move(all);
  return tree;
}

}  // namespace mcfair::graph
