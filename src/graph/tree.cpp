#include "graph/tree.hpp"

#include "graph/route_plan.hpp"

namespace mcfair::graph {

MulticastTree buildShortestPathTree(const Graph& g, NodeId sender,
                                    const std::vector<NodeId>& receivers) {
  g.checkNode(sender);
  // Thin wrapper over the routing-policy layer: a hop-count RoutePlan
  // reproduces the historical one-BFS-per-sender trees bit-identically
  // (first-found predecessor in adjacency order).
  RoutePlan plan(g);
  return plan.distributionTree(sender, receivers);
}

}  // namespace mcfair::graph
