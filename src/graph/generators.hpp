// Random general-graph generators — the meshed substrates the routing
// layer (graph/route_plan.hpp) exists for.
//
// Unlike the m = 1 preferential-attachment *tree* the scenario engine
// grew first, these families contain cycles, so paths are picked by the
// routing policy rather than forced by the topology: Barabási–Albert
// with m >= 2 (the scale-free bottleneck setting of the PAPERS.md
// Sreenivasan et al. study), Waxman's geometric random graphs (the
// classic meshed-backbone model the PAPERS.md ATM fairness studies
// evaluate on), and random regular graphs (the degree-homogeneous
// control). All generators are deterministic in the passed Rng and
// return connected graphs with a uniform placeholder capacity —
// consumers (net/topologies, sim/scenario) assign real capacities from
// routed link loads.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mcfair::graph {

/// Barabási–Albert preferential attachment with m >= 1 edges per new
/// node. Nodes 0..m-1 form the seed; node m connects to all of them;
/// every later node draws m *distinct* targets with probability
/// proportional to degree. m >= 2 yields a scale-free graph with
/// cycles; m = 1 degenerates to the tree case.
struct ScaleFreeGraphOptions {
  std::size_t nodes = 32;
  std::size_t edgesPerNode = 2;  ///< the BA "m"; requires nodes > m
  double capacity = 1.0;         ///< placeholder capacity on every link
};
Graph scaleFreeGraph(util::Rng& rng, const ScaleFreeGraphOptions& opts);

/// Waxman random graph: nodes at uniform positions in the unit square,
/// each pair linked with probability alpha * exp(-d / (beta * L)) where
/// d is the Euclidean distance and L = sqrt(2). Connectivity is then
/// guaranteed by linking every stranded component to the main component
/// through its geometrically nearest node pair (deterministic, keeps
/// the short-link bias).
struct WaxmanGraphOptions {
  std::size_t nodes = 32;
  double alpha = 0.6;    ///< overall link density, in (0, 1]
  double beta = 0.35;    ///< distance decay; larger = longer links
  double capacity = 1.0; ///< placeholder capacity on every link
};
Graph waxmanGraph(util::Rng& rng, const WaxmanGraphOptions& opts);

/// Random d-regular simple graph via the pairing model: d stubs per
/// node, shuffled and paired; attempts with self-loops, parallel edges,
/// or a disconnected result are rejected and redrawn. Requires
/// nodes * degree even and degree < nodes; throws ModelError when
/// maxAttempts rejections pile up (only plausible for tiny, tightly
/// constrained inputs).
struct RandomRegularGraphOptions {
  std::size_t nodes = 32;
  std::size_t degree = 4;
  double capacity = 1.0;  ///< placeholder capacity on every link
  std::size_t maxAttempts = 200;
};
Graph randomRegularGraph(util::Rng& rng, const RandomRegularGraphOptions& opts);

}  // namespace mcfair::graph
