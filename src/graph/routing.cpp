#include "graph/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/route_plan.hpp"
#include "util/error.hpp"

namespace mcfair::graph {

namespace {

// Rebuilds the node/link path from a predecessor array produced by a
// search rooted at `from`. pred[v] = {previous node, link} packed; sentinel
// marks unreached.
struct Pred {
  std::uint32_t node = kNone;
  std::uint32_t link = kNone;
  static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
};

std::optional<Path> rebuild(const std::vector<Pred>& pred, NodeId from,
                            NodeId to) {
  if (from != to && pred[to.value].node == Pred::kNone) return std::nullopt;
  Path p;
  NodeId cur = to;
  p.nodes.push_back(cur);
  while (cur != from) {
    const Pred& pr = pred[cur.value];
    p.links.push_back(LinkId{pr.link});
    cur = NodeId{pr.node};
    p.nodes.push_back(cur);
  }
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

}  // namespace

std::optional<Path> shortestPath(const Graph& g, NodeId from, NodeId to) {
  g.checkNode(from);
  g.checkNode(to);
  std::vector<Pred> pred(g.nodeCount());
  std::vector<bool> seen(g.nodeCount(), false);
  std::queue<NodeId> q;
  seen[from.value] = true;
  q.push(from);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    if (u == to) break;
    for (const Adjacency& adj : g.neighbors(u)) {
      if (seen[adj.neighbor.value]) continue;
      seen[adj.neighbor.value] = true;
      pred[adj.neighbor.value] = {u.value, adj.link.value};
      q.push(adj.neighbor);
    }
  }
  if (!seen[to.value]) return std::nullopt;
  return rebuild(pred, from, to);
}

std::optional<Path> shortestPathWeighted(const Graph& g, NodeId from,
                                         NodeId to,
                                         const std::vector<double>& weight) {
  g.checkNode(from);
  g.checkNode(to);
  MCFAIR_REQUIRE(weight.size() == g.linkCount(),
                 "one weight per link is required");
  // The routing-policy layer owns the deterministic SPT construction
  // (lowest-id predecessor among equal-cost candidates); this function
  // is its single-pair view.
  RoutePlan plan(g, RouteOptions{RoutePolicy::kWeighted, weight});
  if (!plan.reachable(from, to)) return std::nullopt;
  Path p;
  p.links = plan.path(from, to);
  p.nodes.reserve(p.links.size() + 1);
  p.nodes.push_back(from);
  NodeId cur = from;
  for (LinkId l : p.links) {
    const auto [a, b] = g.endpoints(l);
    cur = (cur == a) ? b : a;
    p.nodes.push_back(cur);
  }
  return p;
}

std::vector<std::uint32_t> bfsPredecessors(const Graph& g, NodeId root) {
  g.checkNode(root);
  std::vector<std::uint32_t> out(g.nodeCount(), 0);
  std::vector<bool> seen(g.nodeCount(), false);
  std::queue<NodeId> q;
  seen[root.value] = true;
  q.push(root);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Adjacency& adj : g.neighbors(u)) {
      if (seen[adj.neighbor.value]) continue;
      seen[adj.neighbor.value] = true;
      out[adj.neighbor.value] = adj.link.value + 1;
      q.push(adj.neighbor);
    }
  }
  return out;
}

}  // namespace mcfair::graph
