#include "graph/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace mcfair::graph {

namespace {

// Rebuilds the node/link path from a predecessor array produced by a
// search rooted at `from`. pred[v] = {previous node, link} packed; sentinel
// marks unreached.
struct Pred {
  std::uint32_t node = kNone;
  std::uint32_t link = kNone;
  static constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
};

std::optional<Path> rebuild(const std::vector<Pred>& pred, NodeId from,
                            NodeId to) {
  if (from != to && pred[to.value].node == Pred::kNone) return std::nullopt;
  Path p;
  NodeId cur = to;
  p.nodes.push_back(cur);
  while (cur != from) {
    const Pred& pr = pred[cur.value];
    p.links.push_back(LinkId{pr.link});
    cur = NodeId{pr.node};
    p.nodes.push_back(cur);
  }
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

}  // namespace

std::optional<Path> shortestPath(const Graph& g, NodeId from, NodeId to) {
  g.checkNode(from);
  g.checkNode(to);
  std::vector<Pred> pred(g.nodeCount());
  std::vector<bool> seen(g.nodeCount(), false);
  std::queue<NodeId> q;
  seen[from.value] = true;
  q.push(from);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    if (u == to) break;
    for (const Adjacency& adj : g.neighbors(u)) {
      if (seen[adj.neighbor.value]) continue;
      seen[adj.neighbor.value] = true;
      pred[adj.neighbor.value] = {u.value, adj.link.value};
      q.push(adj.neighbor);
    }
  }
  if (!seen[to.value]) return std::nullopt;
  return rebuild(pred, from, to);
}

std::optional<Path> shortestPathWeighted(const Graph& g, NodeId from,
                                         NodeId to,
                                         const std::vector<double>& weight) {
  g.checkNode(from);
  g.checkNode(to);
  MCFAIR_REQUIRE(weight.size() == g.linkCount(),
                 "one weight per link is required");
  for (double w : weight) {
    MCFAIR_REQUIRE(w >= 0.0, "link weights must be non-negative");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.nodeCount(), kInf);
  std::vector<Pred> pred(g.nodeCount());
  std::vector<bool> done(g.nodeCount(), false);
  using Entry = std::pair<double, std::uint32_t>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[from.value] = 0.0;
  pq.emplace(0.0, from.value);
  while (!pq.empty()) {
    const auto [d, uv] = pq.top();
    pq.pop();
    if (done[uv]) continue;
    done[uv] = true;
    if (NodeId{uv} == to) break;
    for (const Adjacency& adj : g.neighbors(NodeId{uv})) {
      const double nd = d + weight[adj.link.value];
      auto& cur = dist[adj.neighbor.value];
      // Strict improvement, or equal-cost tie broken toward lower
      // predecessor id for determinism.
      if (nd < cur ||
          (nd == cur && !done[adj.neighbor.value] &&
           uv < pred[adj.neighbor.value].node)) {
        cur = nd;
        pred[adj.neighbor.value] = {uv, adj.link.value};
        pq.emplace(nd, adj.neighbor.value);
      }
    }
  }
  if (dist[to.value] == kInf) return std::nullopt;
  return rebuild(pred, from, to);
}

std::vector<std::uint32_t> bfsPredecessors(const Graph& g, NodeId root) {
  g.checkNode(root);
  std::vector<std::uint32_t> out(g.nodeCount(), 0);
  std::vector<bool> seen(g.nodeCount(), false);
  std::queue<NodeId> q;
  seen[root.value] = true;
  q.push(root);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Adjacency& adj : g.neighbors(u)) {
      if (seen[adj.neighbor.value]) continue;
      seen[adj.neighbor.value] = true;
      out[adj.neighbor.value] = adj.link.value + 1;
      q.push(adj.neighbor);
    }
  }
  return out;
}

}  // namespace mcfair::graph
