// Multicast distribution trees.
//
// A session's data reaches each receiver along the receiver's data-path;
// the session's data-path is the union of those paths (Section 2 of the
// paper). buildShortestPathTree() materializes both from a Graph, giving
// the per-receiver link sequences the fairness model consumes.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/routing.hpp"

namespace mcfair::graph {

/// A multicast tree rooted at a sender node.
struct MulticastTree {
  NodeId sender;
  /// receiverPaths[k] is the data-path (link sequence, sender-side first)
  /// for the k-th receiver, in the order receivers were given.
  std::vector<std::vector<LinkId>> receiverPaths;
  /// Deduplicated union of all links on receiver paths (the session
  /// data-path), sorted by link id.
  std::vector<LinkId> sessionLinks;
};

/// Builds the hop-count shortest-path tree from `sender` to each receiver.
/// Because all paths come from one BFS rooted at the sender, the union of
/// paths forms a tree (each node has a single predecessor), matching how
/// DVMRP/PIM-style multicast routing behaves. Throws ModelError when any
/// receiver is unreachable.
MulticastTree buildShortestPathTree(const Graph& g, NodeId sender,
                                    const std::vector<NodeId>& receivers);

}  // namespace mcfair::graph
