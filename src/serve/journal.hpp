// Delta vocabulary and append-only journal of the fairshare service.
//
// A Delta is one state change the service accepts: an absolute link
// re-provisioning, a fault-schedule event (factor applied to the base
// capacity), a session join, or a session leave. The journal frames
// encoded deltas as
//
//   [u32 payload size][payload bytes][u64 FNV-1a(payload)]
//
// records appended (and flushed) one per accepted delta. Replay
// (readJournal) consumes complete records and *silently stops* at a
// truncated or checksum-failing tail — exactly the crash case, where
// the last append may have been cut mid-record; everything before the
// tear is intact by construction. A missing file is an empty journal.
//
// Record payloads reuse the snapshotio primitives (net/snapshot.hpp):
// doubles travel as raw IEEE-754 bits, so replaying a journal applies
// bit-identical values to what the live service applied.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "net/session.hpp"

namespace mcfair::serve {

/// What a Delta does to the service state.
enum class DeltaKind : std::uint8_t {
  kSetCapacity = 0,  ///< re-provision a link's *base* capacity
  kFault = 1,        ///< fault event: capacity = base x factor
  kJoin = 2,         ///< add a session under a caller-chosen id
  kLeave = 3,        ///< remove the session with that id
};

/// One state change. Only the fields of the active kind are meaningful;
/// encode/decode round-trips exactly those.
struct Delta {
  DeltaKind kind = DeltaKind::kSetCapacity;
  graph::LinkId link;                              // kSetCapacity, kFault
  double capacity = 0.0;                           // kSetCapacity
  net::FaultKind fault = net::FaultKind::kLinkUp;  // kFault
  double factor = 1.0;                             // kFault (kDegrade)
  std::uint64_t sessionId = 0;                     // kJoin, kLeave
  net::Session session;                            // kJoin
};

/// Builders for the four kinds.
Delta setCapacityDelta(graph::LinkId link, double capacity);
Delta faultDelta(const net::FaultEvent& event);
Delta joinDelta(std::uint64_t sessionId, net::Session session);
Delta leaveDelta(std::uint64_t sessionId);

/// Encodes a delta into a record payload (no framing).
std::string encodeDelta(const Delta& d);

/// Decodes a record payload. Throws net::SnapshotError on malformed
/// bytes (unknown kind, truncation, trailing garbage).
Delta decodeDelta(const std::string& payload);

/// Append-only record writer. Every append() frames, writes and flushes
/// one record, so an accepted delta is durable before the service
/// acknowledges it.
class JournalWriter {
 public:
  JournalWriter() = default;

  /// Opens `path` for appending; `truncate` discards prior content (a
  /// fresh service) while recovery reopens without it. Throws
  /// net::SnapshotError when the file cannot be opened.
  void open(const std::string& path, bool truncate);

  bool isOpen() const noexcept { return out_.is_open(); }

  /// Appends one framed record and flushes. Throws net::SnapshotError
  /// on write failure.
  void append(const Delta& d);

  void close();

 private:
  std::ofstream out_;
};

/// Replays every complete record of `path` in append order, stopping at
/// the first truncated or corrupt record (crash tear) and ignoring the
/// rest. A missing file yields an empty vector.
std::vector<Delta> readJournal(const std::string& path);

}  // namespace mcfair::serve
