// FairshareService — the always-on serving layer over the max-min
// solver stack (the ROADMAP's "always-on fairshare service" item).
//
// One service owns one net::Network plus a warm fairness::MaxMinSolver
// and a warm fairness::SampledSolver bound to it. State changes arrive
// as serve::Delta values (journal.hpp) and ride the solvers' existing
// rebind tiers: capacity/fault deltas are in-place setCapacity calls
// (O(links), allocation-free refresh on the next solve), joins append
// a session (full rebuild), leaves rebuild the network without the
// session. Queries return receiver allocations; what-if queries answer
// the examples/whatif_analysis.cpp questions against the live state.
//
// Robustness model:
//
//  * Deadline-aware degradation. Every query carries a latency budget
//    (seconds; <= 0 or infinity = unbudgeted). The service maintains an
//    EWMA of measured exact re-solve latencies; when the state is dirty
//    and the budget is below that estimate, it answers from the warm
//    SampledSolver estimate instead and tags the result `degraded`.
//    Degraded answers are *bitwise-equal* to a direct SampledSolver
//    solve with the same SampledOptions on the same network — the
//    sample is deterministic in (structure, seed, fraction). A
//    hysteresis pair (ServiceOptions::degradeAfter / promoteAfter)
//    latches the mode: consecutive blown budgets demote to degraded
//    serving, and only a streak of affordable queries re-promotes to
//    exact, so a service hovering at the budget boundary does not flap.
//
//  * Input hardening. applyDelta validates *before* touching any state:
//    unknown links, non-finite or negative capacities, duplicate or
//    unknown session ids, and structurally invalid sessions return a
//    ServiceStatus error code and push the offender into a bounded
//    quarantine ring — solver and network state are never corrupted.
//    tryApplyDelta bounds the wait on the service lock (an in-flight
//    structural rebind) with retries + exponential backoff and returns
//    kBusy instead of blocking forever.
//
//  * Crash recovery. saveSnapshot writes the network image
//    (net/snapshot.hpp) plus the service's base-capacity/fault-factor
//    arrays and session-id table, and truncates the journal
//    (compaction); every accepted delta is framed into the journal
//    before being acknowledged. recover() loads the snapshot and
//    replays the journal's complete records through the normal apply
//    path (journaling disarmed during replay), reaching allocations
//    EXPECT_EQ-identical to the uninterrupted service; MCFAIR_VALIDATE
//    cross-checks every replayed solve against the reference oracle.
//
//  * Tail observability. Per-operation latency histograms
//    (util::P2Quantile p50/p99/p999 + RunningStats) and
//    exact/degraded/rejected/busy counters, all allocation-free on the
//    hot path: after a warm-up query per mode, query() and capacity/
//    fault applyDelta() perform zero heap allocations (pinned by
//    tests/test_service_zero_alloc.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fairness/sampled.hpp"
#include "serve/journal.hpp"
#include "util/stats.hpp"

namespace mcfair::serve {

/// Structured result codes of the delta/query API.
enum class ServiceStatus : std::uint8_t {
  kOk = 0,
  kUnknownLink,       ///< delta/query references a link id out of range
  kUnknownSession,    ///< leave/what-if references no live session
  kDuplicateSession,  ///< join reuses a live session id
  kBadCapacity,       ///< capacity/factor not finite or out of range
  kMalformed,         ///< structurally invalid session payload
  kBusy,              ///< tryApplyDelta exhausted its lock retries
};

/// Human-readable name of a status code.
const char* serviceStatusName(ServiceStatus s) noexcept;

/// Service knobs. Every member is a runtime knob (see README).
struct ServiceOptions {
  /// Consecutive queries whose budget is below the exact-cost estimate
  /// before the service latches into degraded serving.
  std::size_t degradeAfter = 2;
  /// Consecutive affordable queries (while degraded) before the service
  /// re-promotes to exact — the hysteresis that stops mode flapping.
  std::size_t promoteAfter = 3;
  /// Pins the exact re-solve cost estimate (seconds) when >= 0; the
  /// default -1 tracks an EWMA of measured exact solve latencies.
  /// Tests pin this to make degradation decisions deterministic.
  double exactCostOverride = -1.0;
  /// EWMA smoothing factor of the measured-cost tracker in (0, 1].
  double costEwmaAlpha = 0.2;
  /// Lock-acquisition attempts of tryApplyDelta before kBusy.
  std::size_t deltaRetries = 3;
  /// Initial backoff between tryApplyDelta attempts (doubles per retry).
  double retryBackoffSeconds = 1e-4;
  /// Bounded quarantine ring of rejected deltas (oldest evicted).
  std::size_t quarantineCapacity = 64;
  /// Append-only delta journal path; empty disables journaling.
  std::string journalPath;
  /// Forwarded to the warm exact solver.
  fairness::MaxMinOptions solver;
  /// Forwarded to the warm degraded-path solver (fraction, seed, floor).
  fairness::SampledOptions sampled;
  /// Paranoid cross-checking (util/validate.hpp) of the service's own
  /// replay/refresh invariants; solver-level validation travels inside
  /// `solver`/`sampled`.
  util::ValidateOptions validate;
  /// Test hook: invoked inside applyDelta while the service lock is
  /// held, before the state mutates. Lets tests hold the service busy
  /// deterministically (tryApplyDelta kBusy coverage). Null in
  /// production.
  std::function<void(const Delta&)> rebindHook;
};

/// One answered query. `rates` points at solver-owned storage: valid
/// until the next query/what-if/delta on the service and shaped like
/// the network at answer time.
struct QueryResult {
  ServiceStatus status = ServiceStatus::kOk;
  /// True when the answer is the SampledSolver estimate (budget-driven
  /// degradation), false for an exact allocation.
  bool degraded = false;
  const fairness::Allocation* rates = nullptr;
  /// Wall-clock cost of answering this query (seconds).
  double latencySeconds = 0.0;
  /// Applied-delta revision the answer reflects.
  std::uint64_t revision = 0;
};

/// Streaming latency histogram: Welford stats + P2 tail quantiles.
/// add() never allocates.
struct LatencyHistogram {
  util::RunningStats stats;
  util::P2Quantile p50{0.5};
  util::P2Quantile p99{0.99};
  util::P2Quantile p999{0.999};

  void add(double seconds) noexcept {
    stats.add(seconds);
    p50.add(seconds);
    p99.add(seconds);
    p999.add(seconds);
  }
};

/// Per-operation observability counters and histograms.
struct ServiceMetrics {
  LatencyHistogram exactQuery;
  LatencyHistogram degradedQuery;
  LatencyHistogram deltaApply;
  std::uint64_t exactAnswers = 0;
  std::uint64_t degradedAnswers = 0;
  std::uint64_t appliedDeltas = 0;
  std::uint64_t rejectedDeltas = 0;
  std::uint64_t busyRejections = 0;
  std::uint64_t demotions = 0;   ///< exact -> degraded mode latches
  std::uint64_t promotions = 0;  ///< degraded -> exact mode latches
};

/// A rejected delta held for inspection.
struct QuarantinedDelta {
  Delta delta;
  ServiceStatus status = ServiceStatus::kOk;
  std::string detail;
};

/// The long-lived serving loop. Thread-safe: all public entry points
/// serialize on one internal mutex (queries included — the solvers are
/// single-threaded state machines; concurrency tests drive delta
/// appliers against query threads through exactly this lock).
class FairshareService {
 public:
  /// Takes ownership of the network. Sessions present at construction
  /// get service ids 0..sessionCount-1; base capacities are captured
  /// from the network's current values. A non-empty
  /// ServiceOptions::journalPath is opened truncated (a fresh service
  /// starts a fresh journal; recover() reopens for append instead).
  explicit FairshareService(net::Network network, ServiceOptions options = {});
  ~FairshareService();

  FairshareService(const FairshareService&) = delete;
  FairshareService& operator=(const FairshareService&) = delete;

  // --- Queries. ---

  /// The current allocation within `budgetSeconds` (<= 0 or infinity =
  /// unbudgeted, always exact). Clean-state queries answer from cache.
  QueryResult query(double budgetSeconds);

  /// query() for concurrent callers: copies the answer into `rates`
  /// (flat receiver order, resized to the network's receiver count)
  /// while still holding the service lock, so the values stay valid
  /// across concurrent deltas. The returned result carries a null
  /// `rates` pointer — the caller's vector is the answer. Performs no
  /// heap allocation once `rates` has capacity.
  QueryResult queryInto(double budgetSeconds, std::vector<double>& rates);

  /// What-if: link `l` re-provisioned to `capacity` (> 0, finite).
  /// Solves on the live structures via an in-place capacity swap —
  /// allocation-free — and restores the live state before returning.
  /// Budget-degradable like query(). Does not shift the degradation
  /// hysteresis (hypotheticals are not load signals).
  QueryResult whatIfCapacity(graph::LinkId l, double capacity,
                             double budgetSeconds);

  /// What-if: receiver removed (the paper's Section 2.5 question).
  /// Structural copies — these allocate; always exact.
  QueryResult whatIfWithoutReceiver(net::ReceiverRef ref);

  /// What-if: session `sessionIndex` forced to `type` (Lemma 3).
  QueryResult whatIfSessionType(std::size_t sessionIndex,
                                net::SessionType type);

  /// What-if: session `sessionIndex` running under a different
  /// link-rate (redundancy) function (Lemma 4).
  QueryResult whatIfLinkRate(std::size_t sessionIndex,
                             net::LinkRateFunctionPtr fn);

  // --- Deltas. ---

  /// Validates and applies one delta (blocking on the service lock).
  /// On rejection the state is untouched and the delta is quarantined.
  ServiceStatus applyDelta(const Delta& d);

  /// applyDelta with a bounded wait: ServiceOptions::deltaRetries lock
  /// attempts with exponential backoff, then kBusy (not quarantined —
  /// the delta is valid, the service was contended).
  ServiceStatus tryApplyDelta(const Delta& d);

  // --- Snapshot / recovery. ---

  /// Writes the service image (network + base capacities + fault
  /// factors + session-id table + revision) to `path` and truncates
  /// the journal to it (compaction). Throws net::SnapshotError on IO
  /// failure.
  void saveSnapshot(const std::string& path);

  /// Rebuilds a service from a snapshot plus the journal at
  /// options.journalPath: replays every complete journal record
  /// through the normal apply path (journaling disarmed during
  /// replay — records are not re-appended), then re-arms the journal
  /// for append. Throws net::SnapshotError when the snapshot is
  /// unreadable or a replayed delta no longer applies.
  static std::unique_ptr<FairshareService> recover(
      const std::string& snapshotPath, ServiceOptions options);

  // --- Introspection. ---

  /// The live network (read-only; do not retain across deltas).
  const net::Network& network() const noexcept { return net_; }

  /// Count of applied deltas since construction/snapshot load.
  std::uint64_t revision() const;

  /// True while the service answers queries from the sampled estimate.
  bool degradedMode() const;

  /// A consistent copy of the counters/histograms (taken under the
  /// service lock, so it is safe while other threads query/apply).
  ServiceMetrics metrics() const;

  /// Rejected deltas, oldest first (bounded ring).
  std::vector<QuarantinedDelta> quarantined() const;

  /// Live session ids in network-session order.
  std::vector<std::uint64_t> sessionIds() const;

  const ServiceOptions& options() const noexcept { return options_; }

 private:
  struct Validation {
    ServiceStatus status = ServiceStatus::kOk;
    std::string detail;
  };

  FairshareService(net::Network network, ServiceOptions options,
                   bool truncateJournal);

  Validation validateDelta(const Delta& d) const;
  ServiceStatus applyDeltaLocked(const Delta& d);
  void applyValidatedDelta(const Delta& d);
  void quarantine(const Delta& d, const Validation& v);
  QueryResult answerLocked(double budgetSeconds, bool shiftHysteresis);
  const fairness::Allocation* solveExactLocked();
  const fairness::Allocation* solveDegradedLocked();
  double exactCostEstimate() const noexcept;
  bool sessionIdLive(std::uint64_t id, std::size_t* index) const;

  mutable std::mutex mutex_;
  net::Network net_;
  ServiceOptions options_;

  // Fault model: current capacity of link j == base_[j] * factor_[j].
  // The link set is fixed at construction (deltas never add links).
  std::vector<double> baseCapacity_;
  std::vector<double> faultFactor_;
  std::vector<std::uint64_t> sessionIds_;  // network session index -> id

  fairness::MaxMinSolver exact_;
  fairness::SampledSolver sampled_;
  fairness::MaxMinSolver whatIf_;  // scratch solver for structural copies

  bool exactFresh_ = false;
  bool sampledFresh_ = false;
  const fairness::Allocation* exactAllocation_ = nullptr;
  const fairness::Allocation* sampledAllocation_ = nullptr;

  bool degradedMode_ = false;
  std::size_t blownStreak_ = 0;
  std::size_t affordableStreak_ = 0;
  double measuredExactCost_ = -1.0;  // EWMA (seconds); < 0 = no sample yet

  std::uint64_t revision_ = 0;
  std::atomic<std::uint64_t> busyRejections_{0};
  ServiceMetrics metrics_;
  std::deque<QuarantinedDelta> quarantine_;
  JournalWriter journal_;

  net::Network whatIfScratch_;  // holder for structural what-if copies
};

}  // namespace mcfair::serve
