#include "serve/journal.hpp"

#include <utility>

#include "net/link_rate.hpp"
#include "net/snapshot.hpp"

namespace mcfair::serve {

using net::SnapshotError;
using namespace net::snapshotio;

Delta setCapacityDelta(graph::LinkId link, double capacity) {
  Delta d;
  d.kind = DeltaKind::kSetCapacity;
  d.link = link;
  d.capacity = capacity;
  return d;
}

Delta faultDelta(const net::FaultEvent& event) {
  Delta d;
  d.kind = DeltaKind::kFault;
  d.link = event.link;
  d.fault = event.kind;
  d.factor = event.factor;
  return d;
}

Delta joinDelta(std::uint64_t sessionId, net::Session session) {
  Delta d;
  d.kind = DeltaKind::kJoin;
  d.sessionId = sessionId;
  d.session = std::move(session);
  return d;
}

Delta leaveDelta(std::uint64_t sessionId) {
  Delta d;
  d.kind = DeltaKind::kLeave;
  d.sessionId = sessionId;
  return d;
}

std::string encodeDelta(const Delta& d) {
  std::string out;
  putU8(out, static_cast<std::uint8_t>(d.kind));
  switch (d.kind) {
    case DeltaKind::kSetCapacity:
      putU32(out, d.link.value);
      putF64(out, d.capacity);
      break;
    case DeltaKind::kFault:
      putU32(out, d.link.value);
      putU8(out, static_cast<std::uint8_t>(d.fault));
      putF64(out, d.factor);
      break;
    case DeltaKind::kJoin: {
      putU64(out, d.sessionId);
      const net::Session& s = d.session;
      net::LinkRateSpec spec;
      try {
        spec = net::describeLinkRateFunction(s.linkRateFn.get());
      } catch (const std::exception& e) {
        throw SnapshotError(
            std::string("journal cannot express link-rate function: ") +
            e.what());
      }
      putString(out, s.name);
      putU8(out, s.type == net::SessionType::kSingleRate ? 1 : 0);
      putF64(out, s.maxRate);
      putString(out, spec.family);
      putF64(out, spec.param);
      putU32(out, static_cast<std::uint32_t>(s.receivers.size()));
      for (const net::Receiver& r : s.receivers) {
        putString(out, r.name);
        putF64(out, r.weight);
        putU32(out, static_cast<std::uint32_t>(r.dataPath.size()));
        for (const graph::LinkId l : r.dataPath) putU32(out, l.value);
      }
      break;
    }
    case DeltaKind::kLeave:
      putU64(out, d.sessionId);
      break;
  }
  return out;
}

Delta decodeDelta(const std::string& payload) {
  Cursor in(payload);
  Delta d;
  const std::uint8_t kind = in.u8("delta kind");
  switch (kind) {
    case static_cast<std::uint8_t>(DeltaKind::kSetCapacity):
      d.kind = DeltaKind::kSetCapacity;
      d.link = graph::LinkId{in.u32("delta link")};
      d.capacity = in.f64("delta capacity");
      break;
    case static_cast<std::uint8_t>(DeltaKind::kFault): {
      d.kind = DeltaKind::kFault;
      d.link = graph::LinkId{in.u32("delta link")};
      const std::uint8_t fk = in.u8("fault kind");
      if (fk > static_cast<std::uint8_t>(net::FaultKind::kDegrade)) {
        throw SnapshotError("journal bad fault kind");
      }
      d.fault = static_cast<net::FaultKind>(fk);
      d.factor = in.f64("fault factor");
      break;
    }
    case static_cast<std::uint8_t>(DeltaKind::kJoin): {
      d.kind = DeltaKind::kJoin;
      d.sessionId = in.u64("session id");
      net::Session s;
      s.name = in.str("session name");
      const std::uint8_t type = in.u8("session type");
      if (type > 1) throw SnapshotError("journal bad session type");
      s.type = type == 1 ? net::SessionType::kSingleRate
                         : net::SessionType::kMultiRate;
      s.maxRate = in.f64("session sigma");
      net::LinkRateSpec spec;
      spec.family = in.str("link-rate family");
      spec.param = in.f64("link-rate parameter");
      try {
        s.linkRateFn = net::makeLinkRateFunction(spec);
      } catch (const std::exception& e) {
        throw SnapshotError(std::string("journal bad link-rate spec: ") +
                            e.what());
      }
      const std::uint32_t receiverCount = in.u32("receiver count");
      if (receiverCount > in.remaining()) {
        throw SnapshotError("journal receiver count out of range");
      }
      for (std::uint32_t k = 0; k < receiverCount; ++k) {
        net::Receiver r;
        r.name = in.str("receiver name");
        r.weight = in.f64("receiver weight");
        const std::uint32_t pathLen = in.u32("data-path length");
        if (pathLen > in.remaining() / 4) {
          throw SnapshotError("journal data-path length out of range");
        }
        for (std::uint32_t p = 0; p < pathLen; ++p) {
          r.dataPath.push_back(graph::LinkId{in.u32("data-path link id")});
        }
        s.receivers.push_back(std::move(r));
      }
      d.session = std::move(s);
      break;
    }
    case static_cast<std::uint8_t>(DeltaKind::kLeave):
      d.kind = DeltaKind::kLeave;
      d.sessionId = in.u64("session id");
      break;
    default:
      throw SnapshotError("journal unknown delta kind");
  }
  if (!in.done()) throw SnapshotError("journal trailing bytes in record");
  return d;
}

void JournalWriter::open(const std::string& path, bool truncate) {
  close();
  out_.open(path, truncate ? std::ios::binary | std::ios::trunc
                           : std::ios::binary | std::ios::app);
  if (!out_) {
    throw SnapshotError("journal cannot open '" + path + "'");
  }
}

void JournalWriter::append(const Delta& d) {
  const std::string payload = encodeDelta(d);
  std::string record;
  putU32(record, static_cast<std::uint32_t>(payload.size()));
  record.append(payload);
  putU64(record, fnv1a(payload.data(), payload.size()));
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) throw SnapshotError("journal append failed");
}

void JournalWriter::close() {
  if (out_.is_open()) out_.close();
}

std::vector<Delta> readJournal(const std::string& path) {
  std::vector<Delta> deltas;
  std::ifstream in(path, std::ios::binary);
  if (!in) return deltas;  // missing journal = nothing to replay
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (bytes.size() - pos >= 4) {
    Cursor header(bytes.data() + pos, 4);
    const std::uint32_t size = header.u32("record size");
    // Truncated payload or checksum: the crash tear — stop replaying.
    if (bytes.size() - pos - 4 < static_cast<std::size_t>(size) + 8) break;
    const std::string payload = bytes.substr(pos + 4, size);
    Cursor trailer(bytes.data() + pos + 4 + size, 8);
    if (trailer.u64("record checksum") !=
        fnv1a(payload.data(), payload.size())) {
      break;
    }
    deltas.push_back(decodeDelta(payload));
    pos += 4 + size + 8;
  }
  return deltas;
}

}  // namespace mcfair::serve
