#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "net/snapshot.hpp"
#include "util/error.hpp"

namespace mcfair::serve {

namespace {

using net::SnapshotError;
using namespace net::snapshotio;

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double appliedFactor(const Delta& d) {
  switch (d.fault) {
    case net::FaultKind::kLinkDown:
      return 0.0;
    case net::FaultKind::kLinkUp:
      return 1.0;
    case net::FaultKind::kDegrade:
      return d.factor;
  }
  return 1.0;
}

// Service-snapshot framing: a length-prefixed network snapshot, the
// service arrays, then a whole-file checksum.
constexpr std::uint32_t kServiceMagic = 0x56534653u;  // "SFSV"
constexpr std::uint32_t kServiceVersion = 1;

}  // namespace

const char* serviceStatusName(ServiceStatus s) noexcept {
  switch (s) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kUnknownLink:
      return "unknown-link";
    case ServiceStatus::kUnknownSession:
      return "unknown-session";
    case ServiceStatus::kDuplicateSession:
      return "duplicate-session";
    case ServiceStatus::kBadCapacity:
      return "bad-capacity";
    case ServiceStatus::kMalformed:
      return "malformed";
    case ServiceStatus::kBusy:
      return "busy";
  }
  return "unknown";
}

FairshareService::FairshareService(net::Network network,
                                   ServiceOptions options)
    : FairshareService(std::move(network), std::move(options),
                       /*truncateJournal=*/true) {}

FairshareService::FairshareService(net::Network network,
                                   ServiceOptions options,
                                   bool truncateJournal)
    : net_(std::move(network)),
      options_(std::move(options)),
      exact_(options_.solver),
      sampled_(options_.sampled),
      whatIf_(options_.solver) {
  MCFAIR_REQUIRE(net_.sessionCount() >= 1,
                 "FairshareService requires at least one session");
  MCFAIR_REQUIRE(options_.degradeAfter >= 1,
                 "ServiceOptions::degradeAfter must be >= 1");
  MCFAIR_REQUIRE(options_.promoteAfter >= 1,
                 "ServiceOptions::promoteAfter must be >= 1");
  MCFAIR_REQUIRE(
      options_.costEwmaAlpha > 0.0 && options_.costEwmaAlpha <= 1.0,
      "ServiceOptions::costEwmaAlpha must be in (0, 1]");
  MCFAIR_REQUIRE(options_.quarantineCapacity >= 1,
                 "ServiceOptions::quarantineCapacity must be >= 1");
  baseCapacity_.resize(net_.linkCount());
  faultFactor_.assign(net_.linkCount(), 1.0);
  for (std::size_t j = 0; j < net_.linkCount(); ++j) {
    baseCapacity_[j] =
        net_.capacity(graph::LinkId{static_cast<std::uint32_t>(j)});
  }
  sessionIds_.resize(net_.sessionCount());
  for (std::size_t i = 0; i < net_.sessionCount(); ++i) sessionIds_[i] = i;
  if (truncateJournal && !options_.journalPath.empty()) {
    journal_.open(options_.journalPath, /*truncate=*/true);
  }
}

FairshareService::~FairshareService() = default;

double FairshareService::exactCostEstimate() const noexcept {
  if (options_.exactCostOverride >= 0.0) return options_.exactCostOverride;
  return measuredExactCost_ >= 0.0 ? measuredExactCost_ : 0.0;
}

const fairness::Allocation* FairshareService::solveExactLocked() {
  if (!exactFresh_) {
    const double start = nowSeconds();
    exact_.bind(net_);
    exactAllocation_ = &exact_.solveAllocation();
    const double cost = nowSeconds() - start;
    measuredExactCost_ =
        measuredExactCost_ < 0.0
            ? cost
            : options_.costEwmaAlpha * cost +
                  (1.0 - options_.costEwmaAlpha) * measuredExactCost_;
    exactFresh_ = true;
  }
  return exactAllocation_;
}

const fairness::Allocation* FairshareService::solveDegradedLocked() {
  if (!sampledFresh_) {
    sampled_.bind(net_);
    sampled_.solve();
    sampledAllocation_ = &sampled_.estimateAllocation();
    sampledFresh_ = true;
  }
  return sampledAllocation_;
}

QueryResult FairshareService::answerLocked(double budgetSeconds,
                                           bool shiftHysteresis) {
  const double start = nowSeconds();
  const bool unbudgeted =
      !(budgetSeconds > 0.0) ||
      budgetSeconds == std::numeric_limits<double>::infinity();
  // A clean exact cache answers for free, so a cached answer is always
  // affordable; a dirty state costs one exact re-solve.
  const bool affordable =
      unbudgeted || exactFresh_ || budgetSeconds >= exactCostEstimate();

  bool degraded;
  if (!degradedMode_) {
    degraded = !affordable;
    if (shiftHysteresis) {
      if (degraded) {
        if (++blownStreak_ >= options_.degradeAfter) {
          degradedMode_ = true;
          blownStreak_ = 0;
          ++metrics_.demotions;
        }
      } else {
        blownStreak_ = 0;
      }
    }
  } else {
    degraded = true;
    if (shiftHysteresis) {
      if (affordable) {
        if (++affordableStreak_ >= options_.promoteAfter) {
          degradedMode_ = false;
          affordableStreak_ = 0;
          ++metrics_.promotions;
          degraded = false;  // the promoting query re-solves exact
        }
      } else {
        affordableStreak_ = 0;
      }
    } else if (affordable) {
      // Hypotheticals don't count toward promotion but may still
      // afford an exact answer.
      degraded = false;
    }
  }

  QueryResult result;
  result.degraded = degraded;
  result.rates = degraded ? solveDegradedLocked() : solveExactLocked();
  result.latencySeconds = nowSeconds() - start;
  result.revision = revision_;
  if (degraded) {
    ++metrics_.degradedAnswers;
    metrics_.degradedQuery.add(result.latencySeconds);
  } else {
    ++metrics_.exactAnswers;
    metrics_.exactQuery.add(result.latencySeconds);
  }
  return result;
}

QueryResult FairshareService::query(double budgetSeconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  return answerLocked(budgetSeconds, /*shiftHysteresis=*/true);
}

QueryResult FairshareService::queryInto(double budgetSeconds,
                                        std::vector<double>& rates) {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryResult result = answerLocked(budgetSeconds, /*shiftHysteresis=*/true);
  const std::span<const net::ReceiverRef> refs = net_.receiverRefs();
  rates.resize(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    rates[i] = result.rates->rate(refs[i]);
  }
  result.rates = nullptr;  // the caller's copy is the stable answer
  return result;
}

QueryResult FairshareService::whatIfCapacity(graph::LinkId l, double capacity,
                                             double budgetSeconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryResult result;
  if (l.value >= net_.linkCount()) {
    result.status = ServiceStatus::kUnknownLink;
    return result;
  }
  if (!std::isfinite(capacity) || capacity <= 0.0) {
    result.status = ServiceStatus::kBadCapacity;
    return result;
  }
  const double live = net_.capacity(l);
  net_.setCapacity(l, capacity);
  exactFresh_ = false;
  sampledFresh_ = false;
  result = answerLocked(budgetSeconds, /*shiftHysteresis=*/false);
  net_.setCapacity(l, live);
  // Both solver caches now hold the hypothetical; the next answer
  // refreshes from the restored capacities (O(links) rebind tier).
  exactFresh_ = false;
  sampledFresh_ = false;
  return result;
}

QueryResult FairshareService::whatIfWithoutReceiver(net::ReceiverRef ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryResult result;
  if (ref.session >= net_.sessionCount()) {
    result.status = ServiceStatus::kUnknownSession;
    return result;
  }
  const double start = nowSeconds();
  try {
    whatIfScratch_ = net_.withoutReceiver(ref);
  } catch (const std::exception&) {
    result.status = ServiceStatus::kMalformed;
    return result;
  }
  whatIf_.bind(whatIfScratch_);
  result.rates = &whatIf_.solveAllocation();
  result.latencySeconds = nowSeconds() - start;
  result.revision = revision_;
  ++metrics_.exactAnswers;
  metrics_.exactQuery.add(result.latencySeconds);
  return result;
}

QueryResult FairshareService::whatIfSessionType(std::size_t sessionIndex,
                                                net::SessionType type) {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryResult result;
  if (sessionIndex >= net_.sessionCount()) {
    result.status = ServiceStatus::kUnknownSession;
    return result;
  }
  const double start = nowSeconds();
  try {
    whatIfScratch_ = net_.withSessionType(sessionIndex, type);
  } catch (const std::exception&) {
    result.status = ServiceStatus::kMalformed;
    return result;
  }
  whatIf_.bind(whatIfScratch_);
  result.rates = &whatIf_.solveAllocation();
  result.latencySeconds = nowSeconds() - start;
  result.revision = revision_;
  ++metrics_.exactAnswers;
  metrics_.exactQuery.add(result.latencySeconds);
  return result;
}

QueryResult FairshareService::whatIfLinkRate(std::size_t sessionIndex,
                                             net::LinkRateFunctionPtr fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  QueryResult result;
  if (sessionIndex >= net_.sessionCount()) {
    result.status = ServiceStatus::kUnknownSession;
    return result;
  }
  if (fn == nullptr) {
    result.status = ServiceStatus::kMalformed;
    return result;
  }
  const double start = nowSeconds();
  whatIfScratch_ = net_.withLinkRateFunction(sessionIndex, std::move(fn));
  whatIf_.bind(whatIfScratch_);
  result.rates = &whatIf_.solveAllocation();
  result.latencySeconds = nowSeconds() - start;
  result.revision = revision_;
  ++metrics_.exactAnswers;
  metrics_.exactQuery.add(result.latencySeconds);
  return result;
}

bool FairshareService::sessionIdLive(std::uint64_t id,
                                     std::size_t* index) const {
  for (std::size_t i = 0; i < sessionIds_.size(); ++i) {
    if (sessionIds_[i] == id) {
      if (index != nullptr) *index = i;
      return true;
    }
  }
  return false;
}

FairshareService::Validation FairshareService::validateDelta(
    const Delta& d) const {
  Validation v;
  switch (d.kind) {
    case DeltaKind::kSetCapacity:
      if (d.link.value >= net_.linkCount()) {
        v.status = ServiceStatus::kUnknownLink;
        v.detail = "setCapacity references link " +
                   std::to_string(d.link.value) + " of " +
                   std::to_string(net_.linkCount());
      } else if (!std::isfinite(d.capacity) || d.capacity <= 0.0) {
        v.status = ServiceStatus::kBadCapacity;
        v.detail = "base capacity must be finite and > 0";
      }
      break;
    case DeltaKind::kFault:
      if (d.link.value >= net_.linkCount()) {
        v.status = ServiceStatus::kUnknownLink;
        v.detail = "fault references link " + std::to_string(d.link.value) +
                   " of " + std::to_string(net_.linkCount());
      } else if (d.fault == net::FaultKind::kDegrade &&
                 (!std::isfinite(d.factor) || d.factor <= 0.0)) {
        v.status = ServiceStatus::kBadCapacity;
        v.detail = "degrade factor must be finite and > 0";
      }
      break;
    case DeltaKind::kJoin: {
      if (sessionIdLive(d.sessionId, nullptr)) {
        v.status = ServiceStatus::kDuplicateSession;
        v.detail = "session id " + std::to_string(d.sessionId) +
                   " is already live";
        break;
      }
      const net::Session& s = d.session;
      if (s.receivers.empty()) {
        v.status = ServiceStatus::kMalformed;
        v.detail = "join needs >= 1 receiver";
        break;
      }
      if (std::isnan(s.maxRate) || s.maxRate <= 0.0) {
        v.status = ServiceStatus::kMalformed;
        v.detail = "sigma must be positive";
        break;
      }
      for (const net::Receiver& r : s.receivers) {
        if (r.dataPath.empty()) {
          v.status = ServiceStatus::kMalformed;
          v.detail = "receiver data-path must be non-empty";
          return v;
        }
        if (!std::isfinite(r.weight) || r.weight <= 0.0) {
          v.status = ServiceStatus::kMalformed;
          v.detail = "receiver weight must be finite and > 0";
          return v;
        }
        if (s.type == net::SessionType::kSingleRate &&
            r.weight != s.receivers.front().weight) {
          v.status = ServiceStatus::kMalformed;
          v.detail = "single-rate sessions require uniform weights";
          return v;
        }
        for (const graph::LinkId l : r.dataPath) {
          if (l.value >= net_.linkCount()) {
            v.status = ServiceStatus::kUnknownLink;
            v.detail = "join data-path references link " +
                       std::to_string(l.value) + " of " +
                       std::to_string(net_.linkCount());
            return v;
          }
        }
      }
      break;
    }
    case DeltaKind::kLeave: {
      if (!sessionIdLive(d.sessionId, nullptr)) {
        v.status = ServiceStatus::kUnknownSession;
        v.detail = "leave references unknown session id " +
                   std::to_string(d.sessionId);
      } else if (sessionIds_.size() == 1) {
        v.status = ServiceStatus::kMalformed;
        v.detail = "cannot remove the last session";
      }
      break;
    }
  }
  return v;
}

void FairshareService::applyValidatedDelta(const Delta& d) {
  switch (d.kind) {
    case DeltaKind::kSetCapacity: {
      baseCapacity_[d.link.value] = d.capacity;
      net_.setCapacity(d.link, d.capacity * faultFactor_[d.link.value]);
      break;
    }
    case DeltaKind::kFault: {
      faultFactor_[d.link.value] = appliedFactor(d);
      net_.setCapacity(
          d.link, baseCapacity_[d.link.value] * faultFactor_[d.link.value]);
      break;
    }
    case DeltaKind::kJoin: {
      net_.addSession(d.session);  // pre-validated: cannot throw
      sessionIds_.push_back(d.sessionId);
      break;
    }
    case DeltaKind::kLeave: {
      std::size_t idx = 0;
      sessionIdLive(d.sessionId, &idx);
      // Network has no removeSession: rebuild without the session.
      // Leaves are the rare full-rebuild tier; everything else stays
      // on the in-place refresh path.
      net::Network rebuilt;
      for (std::size_t j = 0; j < net_.linkCount(); ++j) {
        const graph::LinkId l = rebuilt.addLink(baseCapacity_[j]);
        if (faultFactor_[j] != 1.0) {
          rebuilt.setCapacity(l, baseCapacity_[j] * faultFactor_[j]);
        }
      }
      for (std::size_t i = 0; i < net_.sessionCount(); ++i) {
        if (i != idx) rebuilt.addSession(net_.session(i));
      }
      net_ = std::move(rebuilt);
      sessionIds_.erase(sessionIds_.begin() +
                        static_cast<std::ptrdiff_t>(idx));
      break;
    }
  }
  exactFresh_ = false;
  sampledFresh_ = false;
  ++revision_;
  ++metrics_.appliedDeltas;
  if (options_.validate.resolve()) {
    // The service's own invariant: live capacity == base x factor,
    // bit for bit, on every link after every delta.
    for (std::size_t j = 0; j < net_.linkCount(); ++j) {
      const graph::LinkId l{static_cast<std::uint32_t>(j)};
      MCFAIR_REQUIRE(net_.capacity(l) == baseCapacity_[j] * faultFactor_[j],
                     "service validation: capacity != base * factor");
    }
  }
}

void FairshareService::quarantine(const Delta& d, const Validation& v) {
  while (quarantine_.size() >= options_.quarantineCapacity) {
    quarantine_.pop_front();
  }
  quarantine_.push_back(QuarantinedDelta{d, v.status, v.detail});
  ++metrics_.rejectedDeltas;
}

ServiceStatus FairshareService::applyDeltaLocked(const Delta& d) {
  if (options_.rebindHook) options_.rebindHook(d);
  const double start = nowSeconds();
  const Validation v = validateDelta(d);
  if (v.status != ServiceStatus::kOk) {
    quarantine(d, v);
    return v.status;
  }
  applyValidatedDelta(d);
  if (journal_.isOpen()) journal_.append(d);
  metrics_.deltaApply.add(nowSeconds() - start);
  return ServiceStatus::kOk;
}

ServiceStatus FairshareService::applyDelta(const Delta& d) {
  std::lock_guard<std::mutex> lock(mutex_);
  return applyDeltaLocked(d);
}

ServiceStatus FairshareService::tryApplyDelta(const Delta& d) {
  const std::size_t attempts = std::max<std::size_t>(options_.deltaRetries, 1);
  double backoff = options_.retryBackoffSeconds;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2.0;
    }
    if (mutex_.try_lock()) {
      std::lock_guard<std::mutex> lock(mutex_, std::adopt_lock);
      return applyDeltaLocked(d);
    }
  }
  busyRejections_.fetch_add(1, std::memory_order_relaxed);
  return ServiceStatus::kBusy;
}

void FairshareService::saveSnapshot(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  putU32(out, kServiceMagic);
  putU32(out, kServiceVersion);
  const std::string netBytes = net::networkSnapshotBytes(net_);
  putU32(out, static_cast<std::uint32_t>(netBytes.size()));
  out.append(netBytes);
  putU32(out, static_cast<std::uint32_t>(baseCapacity_.size()));
  for (const double b : baseCapacity_) putF64(out, b);
  for (const double f : faultFactor_) putF64(out, f);
  putU32(out, static_cast<std::uint32_t>(sessionIds_.size()));
  for (const std::uint64_t id : sessionIds_) putU64(out, id);
  putU64(out, revision_);
  putU64(out, fnv1a(out.data(), out.size()));

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file) throw SnapshotError("service snapshot write failed: " + path);

  // Compaction: everything up to `revision_` now lives in the
  // snapshot; the journal restarts empty.
  if (journal_.isOpen()) {
    journal_.open(options_.journalPath, /*truncate=*/true);
  }
}

std::unique_ptr<FairshareService> FairshareService::recover(
    const std::string& snapshotPath, ServiceOptions options) {
  std::ifstream file(snapshotPath, std::ios::binary);
  if (!file) {
    throw SnapshotError("service snapshot missing: " + snapshotPath);
  }
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < 8 + 8) throw SnapshotError("service snapshot too short");
  const std::size_t payload = bytes.size() - 8;
  {
    Cursor trailer(bytes.data() + payload, 8);
    if (trailer.u64("checksum") != fnv1a(bytes.data(), payload)) {
      throw SnapshotError("service snapshot checksum mismatch");
    }
  }
  Cursor in(bytes.data(), payload);
  if (in.u32("magic") != kServiceMagic) {
    throw SnapshotError("service snapshot bad magic");
  }
  if (in.u32("version") != kServiceVersion) {
    throw SnapshotError("service snapshot unsupported version");
  }
  const std::uint32_t netSize = in.u32("network size");
  if (netSize > in.remaining()) {
    throw SnapshotError("service snapshot truncated network");
  }
  std::string netBytes(bytes.data() + in.pos(), netSize);
  net::Network network = net::networkFromSnapshotBytes(netBytes);
  Cursor rest(bytes.data() + in.pos() + netSize,
              payload - in.pos() - netSize);
  const std::uint32_t linkCount = rest.u32("base-capacity count");
  if (linkCount != network.linkCount()) {
    throw SnapshotError("service snapshot link-count mismatch");
  }
  std::vector<double> bases(linkCount), factors(linkCount);
  for (auto& b : bases) b = rest.f64("base capacity");
  for (auto& f : factors) f = rest.f64("fault factor");
  const std::uint32_t sessionCount = rest.u32("session-id count");
  if (sessionCount != network.sessionCount()) {
    throw SnapshotError("service snapshot session-count mismatch");
  }
  std::vector<std::uint64_t> ids(sessionCount);
  for (auto& id : ids) id = rest.u64("session id");
  const std::uint64_t revision = rest.u64("revision");
  if (!rest.done()) throw SnapshotError("service snapshot trailing bytes");

  // Journaling stays disarmed through construction and replay: the
  // replayed records must not be re-appended to the journal they came
  // from.
  std::unique_ptr<FairshareService> service(new FairshareService(
      std::move(network), std::move(options), /*truncateJournal=*/false));
  service->baseCapacity_ = std::move(bases);
  service->faultFactor_ = std::move(factors);
  service->sessionIds_ = std::move(ids);
  service->revision_ = revision;

  if (!service->options_.journalPath.empty()) {
    const std::vector<Delta> deltas =
        readJournal(service->options_.journalPath);
    for (const Delta& d : deltas) {
      const Validation v = service->validateDelta(d);
      if (v.status != ServiceStatus::kOk) {
        throw SnapshotError(
            std::string("journal replay: delta rejected (") +
            serviceStatusName(v.status) + "): " + v.detail);
      }
      service->applyValidatedDelta(d);
    }
    service->journal_.open(service->options_.journalPath,
                           /*truncate=*/false);
  }
  return service;
}

std::uint64_t FairshareService::revision() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return revision_;
}

bool FairshareService::degradedMode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degradedMode_;
}

ServiceMetrics FairshareService::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceMetrics m = metrics_;
  m.busyRejections = busyRejections_.load(std::memory_order_relaxed);
  return m;
}

std::vector<QuarantinedDelta> FairshareService::quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<QuarantinedDelta>(quarantine_.begin(),
                                       quarantine_.end());
}

std::vector<std::uint64_t> FairshareService::sessionIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessionIds_;
}

}  // namespace mcfair::serve
